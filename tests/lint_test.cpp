// Negative-fixture tests for the smn-lint engine: violating source is fed in
// as strings and detection (and suppression) is asserted per rule. The
// positive check — the real tree is clean — runs as the `smn_lint` ctest test.
#include "lint_core.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace smn::lint {
namespace {

[[nodiscard]] bool has_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

[[nodiscard]] int line_of_rule(const std::vector<Finding>& fs, const std::string& rule) {
  for (const Finding& f : fs) {
    if (f.rule == rule) return f.line;
  }
  return -1;
}

TEST(LintTest, DetectsBannedRandomInSrc) {
  const std::string source =
      "#include <cstdlib>\n"
      "int draw() {\n"
      "  return std::rand();\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, /*in_src=*/true);
  ASSERT_TRUE(has_rule(fs, "banned-random"));
  EXPECT_EQ(line_of_rule(fs, "banned-random"), 3);
}

TEST(LintTest, DetectsRandomDeviceAndSrand) {
  const std::string source =
      "#include <random>\n"
      "void seed_me() {\n"
      "  std::random_device rd;\n"
      "  srand(rd());\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  EXPECT_GE(fs.size(), 2u);
  EXPECT_TRUE(has_rule(fs, "banned-random"));
}

TEST(LintTest, DetectsWallClock) {
  const std::string source =
      "#include <chrono>\n"
      "long stamp() { return std::chrono::system_clock::now().time_since_epoch().count(); }\n"
      "long stamp2() { return time(nullptr); }\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  EXPECT_TRUE(has_rule(fs, "wall-clock"));
  EXPECT_GE(fs.size(), 2u);
}

TEST(LintTest, DetectsSteadyClock) {
  const std::string source =
      "#include <chrono>\n"
      "double secs() { return std::chrono::steady_clock::now().time_since_epoch().count(); }\n";
  const std::vector<Finding> fs = lint_source("src/obs/foo.cpp", source, true);
  EXPECT_TRUE(has_rule(fs, "wall-clock"));
  EXPECT_EQ(line_of_rule(fs, "wall-clock"), 2);
}

TEST(LintTest, SteadyClockAllowedOutsideSrcAndWhenSuppressed) {
  // bench/ code times with steady_clock legitimately.
  const std::string bench_source =
      "#include <chrono>\n"
      "double secs() { return std::chrono::steady_clock::now().time_since_epoch().count(); }\n";
  EXPECT_FALSE(
      has_rule(lint_source("bench/foo.cpp", bench_source, /*in_src=*/false), "wall-clock"));
  // ...and src/ code can opt out per file, as the sweep runner's wall-clock
  // throughput timer does.
  const std::string suppressed =
      "// smn-lint: allow(wall-clock)\n"
      "using WallClock = std::chrono::steady_clock;\n";
  EXPECT_FALSE(has_rule(lint_source("src/foo.cpp", suppressed, /*in_src=*/true), "wall-clock"));
}

TEST(LintTest, SrcOnlyRulesIgnoredOutsideSrc) {
  const std::string source = "int draw() { return std::rand(); }\n";
  const std::vector<Finding> fs = lint_source("tests/foo.cpp", source, /*in_src=*/false);
  EXPECT_FALSE(has_rule(fs, "banned-random"));
}

TEST(LintTest, IgnoresBannedTokensInCommentsAndStrings) {
  const std::string source =
      "// std::rand() is banned, this comment is fine\n"
      "/* so is srand in a block comment */\n"
      "const char* doc = \"std::random_device\";\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  EXPECT_TRUE(fs.empty());
}

TEST(LintTest, DetectsUnorderedIterationWithRngDraw) {
  const std::string source =
      "#include <unordered_map>\n"
      "void jitter(smn::sim::RngStream& rng) {\n"
      "  std::unordered_map<int, double> weights;\n"
      "  for (auto& [id, w] : weights) {\n"
      "    w += rng.uniform();\n"
      "  }\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  ASSERT_TRUE(has_rule(fs, "unordered-iteration"));
  EXPECT_EQ(line_of_rule(fs, "unordered-iteration"), 4);
}

TEST(LintTest, DetectsUnorderedIterationThatSchedulesEvents) {
  const std::string source =
      "void kick(smn::sim::Simulator& sim) {\n"
      "  std::unordered_set<int> pending;\n"
      "  for (int id : pending) {\n"
      "    sim.schedule_after(delay(id), [] {});\n"
      "  }\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  EXPECT_TRUE(has_rule(fs, "unordered-iteration"));
}

TEST(LintTest, AllowsBenignUnorderedIteration) {
  const std::string source =
      "void restock(std::unordered_map<int, int>& spares) {\n"
      "  for (auto& [ff, count] : spares) {\n"
      "    count = std::max(count, 8);\n"
      "  }\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  EXPECT_FALSE(has_rule(fs, "unordered-iteration"));
}

TEST(LintTest, AllowsRngDrawOverOrderedContainer) {
  const std::string source =
      "void jitter(std::vector<double>& v, smn::sim::RngStream& rng) {\n"
      "  for (double& x : v) x += rng.uniform();\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  EXPECT_FALSE(has_rule(fs, "unordered-iteration"));
}

TEST(LintTest, RequiresPragmaOnceInHeaders) {
  const std::vector<Finding> fs =
      lint_source("src/foo.h", "namespace smn { int x(); }\n", true);
  EXPECT_TRUE(has_rule(fs, "pragma-once"));
  const std::vector<Finding> ok =
      lint_source("src/foo.h", "#pragma once\nnamespace smn { int x(); }\n", true);
  EXPECT_FALSE(has_rule(ok, "pragma-once"));
}

TEST(LintTest, RequiresSmnNamespaceInSrcHeaders) {
  const std::vector<Finding> fs =
      lint_source("src/foo.h", "#pragma once\nint loose();\n", true);
  EXPECT_TRUE(has_rule(fs, "namespace"));
  // Non-src headers (tests/bench helpers) are exempt.
  const std::vector<Finding> bench =
      lint_source("bench/common.h", "#pragma once\nint loose();\n", false);
  EXPECT_FALSE(has_rule(bench, "namespace"));
}

TEST(LintTest, DetectsHotCopyInLoopBody) {
  const std::string source =
      "void tally(const smn::net::Network& net) {\n"
      "  int n = 0;\n"
      "  for (int i = 0; i < 10; ++i) {\n"
      "    n += static_cast<int>(net.servers().size());\n"
      "  }\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  ASSERT_TRUE(has_rule(fs, "hot-copy"));
  EXPECT_EQ(line_of_rule(fs, "hot-copy"), 4);
}

TEST(LintTest, DetectsHotCopyLinksBetweenInWhileBody) {
  const std::string source =
      "int probe(smn::net::Network* net) {\n"
      "  int n = 0;\n"
      "  while (n < 4)\n"
      "    n += static_cast<int>(net->links_between(a, b).size());\n"
      "  return n;\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  EXPECT_TRUE(has_rule(fs, "hot-copy"));
}

TEST(LintTest, DetectsDevicesWithRoleInLoopBody) {
  const std::string source =
      "void audit(const smn::net::Network& net) {\n"
      "  for (int pass = 0; pass < 3; ++pass) {\n"
      "    check(net.devices_with_role(smn::topology::Role::kSpine));\n"
      "  }\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  ASSERT_TRUE(has_rule(fs, "hot-copy"));
  EXPECT_EQ(line_of_rule(fs, "hot-copy"), 3);
}

TEST(LintTest, AllowsHoistedDevicesWithRole) {
  const std::string source =
      "void audit(const smn::net::Network& net) {\n"
      "  const auto& spines = net.devices_with_role(smn::topology::Role::kSpine);\n"
      "  for (int pass = 0; pass < 3; ++pass) check(spines);\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  EXPECT_FALSE(has_rule(fs, "hot-copy"));
}

TEST(LintTest, DetectsBfsDistancesInLoopBody) {
  const std::string source =
      "void spread(const smn::net::ConnectivityEngine& conn, std::vector<int>& d) {\n"
      "  for (const auto dst : targets) {\n"
      "    conn.bfs_distances(dst, {}, d);\n"
      "    consume(d);\n"
      "  }\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  ASSERT_TRUE(has_rule(fs, "hot-copy"));
  EXPECT_EQ(line_of_rule(fs, "hot-copy"), 3);
}

TEST(LintTest, AllowsBfsDistancesOutsideLoop) {
  const std::string source =
      "void once(const smn::net::ConnectivityEngine& conn, std::vector<int>& d) {\n"
      "  conn.bfs_distances(root, {}, d);\n"
      "  for (const int x : d) consume(x);\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  EXPECT_FALSE(has_rule(fs, "hot-copy"));
}

TEST(LintTest, AllowsHoistedAccessorOutsideLoop) {
  const std::string source =
      "void tally(const smn::net::Network& net) {\n"
      "  const auto& servers = net.servers();\n"
      "  int n = 0;\n"
      "  for (const auto d : servers) ++n;\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  EXPECT_FALSE(has_rule(fs, "hot-copy"));
}

TEST(LintTest, AllowsAccessorInRangeForHead) {
  // The range expression of a range-for is evaluated once, not per iteration.
  const std::string source =
      "int live(const smn::net::Network& net) {\n"
      "  int n = 0;\n"
      "  for (const auto lid : net.links_between(a, b)) ++n;\n"
      "  return n;\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  EXPECT_FALSE(has_rule(fs, "hot-copy"));
}

TEST(LintTest, HotCopyIgnoredOutsideSrcAndSuppressible) {
  const std::string source =
      "void tally(const smn::net::Network& net) {\n"
      "  for (int i = 0; i < 10; ++i) use(net.servers());\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("tests/foo.cpp", source, false), "hot-copy"));
  const std::string suppressed = "// smn-lint: allow(hot-copy)\n" + source;
  EXPECT_FALSE(has_rule(lint_source("src/foo.cpp", suppressed, true), "hot-copy"));
}

TEST(LintTest, DetectsSubMinutePeriodicLiteral) {
  const std::string source =
      "void start(smn::sim::Simulator& sim) {\n"
      "  sim.schedule_every(smn::sim::Duration::seconds(10), [] {});\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  ASSERT_TRUE(has_rule(fs, "hot-schedule"));
  EXPECT_EQ(line_of_rule(fs, "hot-schedule"), 2);
  // Milliseconds are always sub-minute, whatever the literal.
  const std::vector<Finding> ms = lint_source(
      "src/foo.cpp",
      "void s(smn::sim::Simulator& q) { q.schedule_every(Duration::milliseconds(500), f); }\n",
      true);
  EXPECT_TRUE(has_rule(ms, "hot-schedule"));
}

TEST(LintTest, AllowsMinuteScalePeriodicAndConfigPeriods) {
  // A minute or more is fine...
  const std::vector<Finding> ok = lint_source(
      "src/foo.cpp",
      "void s(smn::sim::Simulator& q) { q.schedule_every(sim::Duration::minutes(5), f); }\n",
      true);
  EXPECT_FALSE(has_rule(ok, "hot-schedule"));
  // ...and so is a config-driven period: only literals at the call site are
  // flagged (the config default is a reviewed, named decision).
  const std::vector<Finding> cfg = lint_source(
      "src/foo.cpp", "void s(smn::sim::Simulator& q) { q.schedule_every(cfg_.poll, f); }\n",
      true);
  EXPECT_FALSE(has_rule(cfg, "hot-schedule"));
}

TEST(LintTest, DetectsCaptureDefaultScheduleInLoopBody) {
  const std::string source =
      "void flood(smn::sim::Simulator& sim) {\n"
      "  for (int i = 0; i < 10; ++i) {\n"
      "    sim.schedule_after(delay, [=] { use(i); });\n"
      "  }\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  ASSERT_TRUE(has_rule(fs, "hot-schedule"));
  EXPECT_EQ(line_of_rule(fs, "hot-schedule"), 3);
}

TEST(LintTest, DetectsFatByValueCapturesInLoopBody) {
  const std::string source =
      "void flood(smn::sim::Simulator& sim) {\n"
      "  while (pending()) {\n"
      "    sim.schedule_at(t, [this, a, b, c, d, e, f] { run(); });\n"
      "  }\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  ASSERT_TRUE(has_rule(fs, "hot-schedule"));
  EXPECT_EQ(line_of_rule(fs, "hot-schedule"), 3);
}

TEST(LintTest, AllowsLeanSchedulesInLoopBodies) {
  // Small by-value capture lists and by-reference captures fit the event
  // queue's inline buffer; scheduling outside any loop is never flagged.
  const std::string source =
      "void ok(smn::sim::Simulator& sim) {\n"
      "  for (int i = 0; i < 10; ++i) {\n"
      "    sim.schedule_after(delay, [this, i] { run(i); });\n"
      "  }\n"
      "  sim.schedule_after(delay, [=] { run_everything(); });\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  EXPECT_FALSE(has_rule(fs, "hot-schedule"));
}

TEST(LintTest, HotScheduleIgnoredOutsideSrcAndSuppressible) {
  const std::string source =
      "void start(smn::sim::Simulator& sim) {\n"
      "  sim.schedule_every(sim::Duration::seconds(1), [] {});\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("tests/foo.cpp", source, false), "hot-schedule"));
  const std::string suppressed = "// smn-lint: allow(hot-schedule)\n" + source;
  EXPECT_FALSE(has_rule(lint_source("src/foo.cpp", suppressed, true), "hot-schedule"));
}

TEST(LintTest, SuppressionCommentDisablesRuleFileWide) {
  const std::string source =
      "// smn-lint: allow(banned-random)\n"
      "int draw() { return std::rand(); }\n"
      "long stamp() { return time(nullptr); }\n";
  const std::vector<Finding> fs = lint_source("src/foo.cpp", source, true);
  EXPECT_FALSE(has_rule(fs, "banned-random"));
  // Only the named rule is suppressed.
  EXPECT_TRUE(has_rule(fs, "wall-clock"));
}

TEST(LintTest, FormatIsMachineReadable) {
  const Finding f{"src/foo.cpp", 12, "banned-random", "no"};
  EXPECT_EQ(format(f), "src/foo.cpp:12: banned-random: no");
  const Finding whole{"src/foo.h", 0, "pragma-once", "missing"};
  EXPECT_EQ(format(whole), "src/foo.h: pragma-once: missing");
}

}  // namespace
}  // namespace smn::lint
