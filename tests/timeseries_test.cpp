// Tests for the time-series recorder.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/timeseries.h"

namespace smn::analysis {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(TimeSeries, SamplesAtInterval) {
  sim::Simulator sim;
  TimeSeriesRecorder rec{sim, Duration::hours(1)};
  double value = 0;
  rec.add_column("v", [&] { return value; });
  rec.start();
  sim.schedule_every(Duration::minutes(30), [&] { value += 1.0; });
  sim.run_until(TimePoint::origin() + Duration::hours(5));
  EXPECT_EQ(rec.rows(), 5u);
  EXPECT_DOUBLE_EQ(rec.times_hours()[0], 1.0);
  // At t=1h the 30-min bumper has fired twice; ordering at the shared tick
  // is deterministic (bumper scheduled after the recorder fires later).
  EXPECT_GE(rec.column(0)[4], rec.column(0)[0]);
}

TEST(TimeSeries, CsvShape) {
  sim::Simulator sim;
  TimeSeriesRecorder rec{sim, Duration::hours(1)};
  rec.add_column("a", [] { return 1.5; });
  rec.add_column("b", [] { return 2.5; });
  rec.start();
  sim.run_until(TimePoint::origin() + Duration::hours(2));
  std::ostringstream os;
  rec.write_csv(os);
  EXPECT_EQ(os.str(), "hours,a,b\n1,1.5,2.5\n2,1.5,2.5\n");
}

TEST(TimeSeries, StopHaltsSampling) {
  sim::Simulator sim;
  TimeSeriesRecorder rec{sim, Duration::hours(1)};
  rec.add_column("a", [] { return 0.0; });
  rec.start();
  sim.run_until(TimePoint::origin() + Duration::hours(3));
  rec.stop();
  sim.run_until(TimePoint::origin() + Duration::hours(10));
  EXPECT_EQ(rec.rows(), 3u);
}

TEST(TimeSeries, RejectsColumnsAfterStartAndEmptyProbes) {
  sim::Simulator sim;
  TimeSeriesRecorder rec{sim, Duration::hours(1)};
  EXPECT_THROW(rec.add_column("x", {}), std::invalid_argument);
  rec.add_column("a", [] { return 0.0; });
  rec.start();
  EXPECT_THROW(rec.add_column("b", [] { return 0.0; }), std::logic_error);
}

TEST(TimeSeries, ManualSample) {
  sim::Simulator sim;
  TimeSeriesRecorder rec{sim, Duration::hours(1)};
  rec.add_column("a", [] { return 7.0; });
  rec.sample_now();
  EXPECT_EQ(rec.rows(), 1u);
  EXPECT_DOUBLE_EQ(rec.column(0)[0], 7.0);
}

}  // namespace
}  // namespace smn::analysis
