// Tests for the SNS-repair storage data plane: seeded placement invariants,
// incremental serving/readable tracking against a brute-force re-derivation
// under randomized failures, repair convergence and fabric-health throttling,
// the workload::StorageService differential oracle (degenerate N=1 layout),
// and jobs/shards byte-identical sweep reports with storage enabled.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "runner/presets.h"
#include "runner/sweep.h"
#include "scenario/world.h"
#include "storage/data_plane.h"
#include "storage/stripe_pool.h"
#include "topology/builders.h"
#include "workload/storage_service.h"

namespace smn::storage {
namespace {

using sim::Duration;
using sim::TimePoint;

struct StripePoolFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp = runner::standard_fabric();
  net::Network net{bp, net::Network::Config{}, sim};
  sim::RngFactory rngs{11};

  void flip_link(net::LinkId id, bool intact) {
    net.link_mut(id).cable.intact = intact;
    net.refresh_link(id);
  }

  /// Ground truth for "serving": the predicate both StripePool and
  /// workload::StorageService define, re-derived from scratch.
  [[nodiscard]] bool serving_truth(net::DeviceId id) const {
    if (!net.device(id).healthy) return false;
    for (const net::LinkId lid : net.links_at(id)) {
      if (net.usable(lid)) return true;
    }
    return false;
  }

  [[nodiscard]] int serving_truth_count(const StripePool& pool, std::size_t s) const {
    int n = 0;
    for (const net::DeviceId dev : pool.stripe(s).units) {
      if (serving_truth(dev)) ++n;
    }
    return n;
  }

  /// Wires a bare pool to link transitions the way DataPlane does: apply the
  /// flip, then close any episode whose failures all recovered on their own
  /// (the pool leaves episode accounting to its driver).
  void track(StripePool& pool) {
    net.subscribe([this, &pool](const net::Link& l, net::LinkState, net::LinkState) {
      pool.on_link_transition(l);
      for (std::size_t s = pool.first_dirty(0); s < pool.stripe_count();
           s = pool.first_dirty(s + 1)) {
        (void)pool.finish_episode_if_clean(s, net.now());
      }
    });
  }
};

TEST_F(StripePoolFixture, PlacementSeparatesServersAndRacks) {
  sim::RngStream rng = rngs.stream("layout");
  const StripePool pool{net, rng, {.data_units = 8, .parity_units = 2, .stripes = 64}};
  ASSERT_EQ(pool.stripe_count(), 64u);
  // The standard fabric has 12 server racks (one per leaf), more than the
  // stripe width, so the round-robin placement owes every unit its own rack.
  for (std::size_t s = 0; s < pool.stripe_count(); ++s) {
    const Stripe& st = pool.stripe(s);
    ASSERT_EQ(static_cast<int>(st.units.size()), pool.width());
    std::set<std::int32_t> servers;
    std::set<std::tuple<int, int, int>> racks;
    for (const net::DeviceId dev : st.units) {
      EXPECT_EQ(net.device(dev).role, topology::NodeRole::kServer);
      servers.insert(dev.value());
      const topology::RackLocation& loc = net.device(dev).location;
      racks.insert({loc.hall, loc.row, loc.rack});
    }
    EXPECT_EQ(servers.size(), st.units.size()) << "stripe " << s << " reuses a server";
    EXPECT_EQ(racks.size(), st.units.size()) << "stripe " << s << " reuses a rack";
  }
  pool.check_invariants();
}

TEST_F(StripePoolFixture, PlacementIsAPureFunctionOfTheSeed) {
  sim::RngFactory a{42};
  sim::RngFactory b{42};
  sim::RngStream ra = a.stream("storage");
  sim::RngStream rb = b.stream("storage");
  const StripePool pa{net, ra, {.data_units = 4, .parity_units = 2, .stripes = 16}};
  const StripePool pb{net, rb, {.data_units = 4, .parity_units = 2, .stripes = 16}};
  for (std::size_t s = 0; s < pa.stripe_count(); ++s) {
    EXPECT_EQ(pa.stripe(s).units, pb.stripe(s).units) << "stripe " << s;
  }
}

TEST_F(StripePoolFixture, ServingTrackingMatchesBruteForceUnderRandomFailures) {
  sim::RngStream rng = rngs.stream("layout");
  StripePool pool{net, rng, {.data_units = 6, .parity_units = 2, .stripes = 32}};
  track(pool);
  sim::RngStream chaos = rngs.stream("chaos");
  const std::size_t links = net.links().size();
  for (int round = 0; round < 300; ++round) {
    const net::LinkId lid{static_cast<std::int32_t>(chaos.index(links))};
    flip_link(lid, !net.link(lid).cable.intact);
    // Every stripe's incremental failure mask must agree with a from-scratch
    // re-derivation of its units' health, and readable() must be exactly the
    // "at least N of N+K" rule over that ground truth.
    for (std::size_t s = 0; s < pool.stripe_count(); ++s) {
      const int truth = serving_truth_count(pool, s);
      ASSERT_EQ(pool.units_serving(s), truth) << "stripe " << s << " round " << round;
      ASSERT_EQ(pool.readable(s), truth >= pool.config().data_units);
    }
  }
  pool.check_invariants();
}

TEST_F(StripePoolFixture, RepairConvergesAndRecordsWindows) {
  DataPlane::Config cfg;
  cfg.enabled = true;
  cfg.layout = {.data_units = 4, .parity_units = 2, .stripes = 16, .unit_mb = 64.0};
  cfg.read_interval = Duration::minutes(10);
  cfg.repair_mbps = 128.0;  // one unit rebuild: 0.5 simulated seconds
  DataPlane dp{net, rngs.stream("storage"), cfg};
  dp.start();

  // Kill every access link of the first two servers: their hosted units all
  // fail, the groups go dirty, and nothing on those servers can come back.
  for (int i = 0; i < 2; ++i) {
    for (const net::LinkId lid : net.links_at(net.servers()[static_cast<std::size_t>(i)])) {
      flip_link(lid, false);
    }
  }
  EXPECT_GT(dp.pool().dirty_count(), 0u);

  sim.run_until(TimePoint::origin() + Duration::hours(6));
  // The coordinator re-placed every failed unit onto surviving servers and
  // closed each dirty episode, recording its repair window.
  EXPECT_EQ(dp.pool().dirty_count(), 0u);
  EXPECT_GT(dp.repairs_completed(), 0u);
  EXPECT_GT(dp.repaired_mb(), 0.0);
  EXPECT_GT(dp.repair_windows(), 0u);
  EXPECT_GT(dp.mean_repair_window_hours(), 0.0);
  EXPECT_EQ(dp.data_loss_fraction(), 0.0);  // K=2 tolerated the single-rack hit
  EXPECT_GT(dp.reads(), 0u);
  dp.check_invariants();
}

TEST_F(StripePoolFixture, RepairRateThrottlesWithFabricHealth) {
  DataPlane::Config cfg;
  cfg.enabled = true;
  cfg.layout = {.data_units = 4, .parity_units = 2, .stripes = 8};
  DataPlane dp{net, rngs.stream("storage"), cfg};
  dp.start();

  EXPECT_DOUBLE_EQ(dp.fabric_health(), 1.0);
  EXPECT_DOUBLE_EQ(dp.current_repair_mbps(), cfg.repair_mbps);

  // Impair a third of the fabric: the health-weighted refill rate must drop
  // below the healthy rate but never under the floor — the co-design
  // observable E19 sweeps (acceptance: the throttle demonstrably moves).
  const std::size_t links = net.links().size();
  for (std::size_t i = 0; i < links; i += 3) {
    flip_link(net::LinkId{static_cast<std::int32_t>(i)}, false);
  }
  EXPECT_LT(dp.fabric_health(), 1.0);
  EXPECT_LT(dp.current_repair_mbps(), cfg.repair_mbps);
  EXPECT_GE(dp.current_repair_mbps(), cfg.repair_mbps * cfg.health_floor);
  dp.check_invariants();
}

TEST_F(StripePoolFixture, DegenerateLayoutMatchesStorageServiceOracle) {
  // N=1 data + K=(replication-1) parity on the service's own replica sets is
  // exactly replication: a shard is readable iff any replica serves.
  workload::StorageService svc{net, rngs.stream("svc"), {.replication = 3, .shards = 50}};
  StripePool::Config cfg;
  cfg.data_units = 1;
  cfg.explicit_placements = svc.placements();
  sim::RngStream rng = rngs.stream("unused");
  StripePool pool{net, rng, cfg};
  EXPECT_EQ(pool.width(), 3);
  track(pool);

  sim::RngStream chaos = rngs.stream("chaos");
  const std::size_t links = net.links().size();
  for (int round = 0; round < 200; ++round) {
    const net::LinkId lid{static_cast<std::int32_t>(chaos.index(links))};
    flip_link(lid, !net.link(lid).cable.intact);
    for (std::size_t s = 0; s < pool.stripe_count(); ++s) {
      bool any_replica = false;
      for (const net::DeviceId dev : pool.stripe(s).units) {
        ASSERT_EQ(pool.serving(dev), svc.server_serving(dev))
            << "serving predicate diverged on device " << dev.value();
        any_replica = any_replica || svc.server_serving(dev);
      }
      ASSERT_EQ(pool.readable(s), any_replica) << "shard " << s << " round " << round;
    }
  }
  pool.check_invariants();
}

TEST(StorageWorld, WorldRunsWithStorageAndExportsMetrics) {
  scenario::WorldConfig cfg =
      runner::storage_world(core::AutomationLevel::kL3_HighAutomation, 3);
  cfg.storage.layout = {.data_units = 3, .parity_units = 1, .stripes = 12, .unit_mb = 256.0};
  cfg.faults.transceiver_afr = 2.0;
  scenario::World world{runner::standard_fabric(), cfg};
  world.run_for(Duration::days(5));
  world.check_invariants();
  ASSERT_TRUE(world.has_storage());
  EXPECT_GT(world.storage().reads(), 0u);
  bool found = false;
  for (const obs::SnapshotEntry& e : world.obs().metrics()->snapshot()) {
    found = found || e.name == "storage_reads_total";
  }
  EXPECT_TRUE(found) << "storage_* instruments missing from the obs schema";
}

TEST(StorageSweep, JobsInvarianceWithStorageEnabled) {
  const runner::SweepSpec spec =
      runner::storage_quick_sweep(Duration::days(2), /*first_seed=*/1, /*seeds=*/2);
  runner::SweepRunner serial;
  runner::SweepRunner threaded;
  const runner::SweepReport a = serial.run(spec, {.jobs = 1});
  const runner::SweepReport b = threaded.run(spec, {.jobs = 4});
  const runner::JsonOptions no_timing{.include_timing = false};
  EXPECT_EQ(runner::to_json(a, no_timing), runner::to_json(b, no_timing));
  // The cell actually exercised the data plane (reads landed in the obs
  // aggregate) — invariance of an idle subsystem would prove nothing.
  bool saw_reads = false;
  for (const auto& o : a.cells.at(0).obs) {
    saw_reads = saw_reads || (o.name == "storage_reads_total" && o.mean > 0.0);
  }
  EXPECT_TRUE(saw_reads);
}

TEST(StorageSweep, ShardInvarianceWithStorageEnabled) {
  const runner::SweepSpec spec =
      runner::storage_campus_sweep(Duration::days(2), /*first_seed=*/1, /*seeds=*/1);
  const runner::JsonOptions no_timing{.include_timing = false};
  std::string baseline;
  for (const int shards : {1, 2, 4}) {
    runner::SweepRunner sweeper;
    runner::SweepRunner::Options opts;
    opts.jobs = 1;
    opts.shards = shards;
    const std::string json = runner::to_json(sweeper.run(spec, opts), no_timing);
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "campus storage sweep diverged at shards=" << shards;
    }
  }
  EXPECT_NE(baseline.find("storage_repair_window_hours"), std::string::npos);
}

}  // namespace
}  // namespace smn::storage
