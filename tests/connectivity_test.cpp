// Randomized differential tests for the ConnectivityEngine: the engine's
// answers must be indistinguishable from the reference BFS
// (`path_available_bfs`) across thousands of random fault / repair / rewire /
// admin-down / device-health sequences on every topology preset and every
// PathPolicy class. Also pins the cache contract itself: query bursts against
// an unchanged network perform no rebuilds, and the parallel-link group index
// always matches a brute-force scan of the link table.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "net/connectivity.h"
#include "net/network.h"
#include "net/routing.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "topology/builders.h"

namespace smn::net {
namespace {

// The pre-engine shortest-path BFS, kept verbatim as the path oracle: the
// engine must return byte-identical paths, not merely paths of equal length.
std::vector<DeviceId> reference_shortest_path(const Network& net, DeviceId from,
                                              DeviceId to, const PathPolicy& policy) {
  if (from == to) return {from};
  const int n = static_cast<int>(net.devices().size());
  std::vector<int> parent(static_cast<size_t>(n), -2);
  std::queue<DeviceId> q;
  parent[static_cast<size_t>(from.value())] = -1;
  q.push(from);
  while (!q.empty()) {
    const DeviceId cur = q.front();
    q.pop();
    for (const LinkId lid : net.links_at(cur)) {
      const Link& l = net.link(lid);
      if (!link_usable(l, policy)) continue;
      const DeviceId peer = l.end_a.device == cur ? l.end_b.device : l.end_a.device;
      if (!net.device(peer).healthy) continue;
      auto& p = parent[static_cast<size_t>(peer.value())];
      if (p != -2) continue;
      p = cur.value();
      if (peer == to) {
        std::vector<DeviceId> path;
        DeviceId v = to;
        while (true) {
          path.push_back(v);
          const int pv = parent[static_cast<size_t>(v.value())];
          if (pv == -1) break;
          v = DeviceId{pv};
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      q.push(peer);
    }
  }
  return {};
}

const PathPolicy kPolicies[] = {
    {.use_flapping = true, .use_degraded = true},
    {.use_flapping = true, .use_degraded = false},
    {.use_flapping = false, .use_degraded = true},
    {.use_flapping = false, .use_degraded = false},
};

void expect_group_index_matches_brute_force(const Network& net) {
  // The cached group must reproduce the pre-cache implementation exactly: a
  // scan of `links_at(a)` filtered to links whose far end is `b`, in row
  // order — from either query direction.
  const auto brute = [&](DeviceId a, DeviceId b) {
    std::vector<LinkId> out;
    for (const LinkId lid : net.links_at(a)) {
      const Link& l = net.link(lid);
      const DeviceId peer = l.end_a.device == a ? l.end_b.device : l.end_a.device;
      if (peer == b) out.push_back(lid);
    }
    return out;
  };
  for (const Link& probe : net.links()) {
    ASSERT_EQ(net.links_between(probe.end_a.device, probe.end_b.device),
              brute(probe.end_a.device, probe.end_b.device));
    ASSERT_EQ(net.links_between(probe.end_b.device, probe.end_a.device),
              brute(probe.end_b.device, probe.end_a.device));
  }
}

void run_differential(const topology::Blueprint& bp, std::uint64_t seed, int ops) {
  sim::Simulator sim;
  Network net{bp, Network::Config{}, sim};
  sim::RngFactory rngs{seed};
  sim::RngStream rng = rngs.stream("connectivity.differential");

  const auto n_devices = net.devices().size();
  const auto n_links = net.links().size();
  ASSERT_GE(n_devices, 4u);
  ASSERT_GE(n_links, 4u);

  for (int op = 0; op < ops; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 5));
    const LinkId lid{static_cast<std::int32_t>(rng.index(n_links))};
    switch (kind) {
      case 0: {  // cable fault
        net.link_mut(lid).cable.intact = false;
        net.refresh_link(lid);
        break;
      }
      case 1: {  // full repair
        Link& l = net.link_mut(lid);
        l.cable = CableCondition{};
        l.end_a.condition = EndCondition{};
        l.end_b.condition = EndCondition{};
        l.admin_down = false;
        net.refresh_link(lid);
        break;
      }
      case 2: {  // contamination: exercises Degraded / Flapping classes
        net.link_mut(lid).end_a.condition.contamination = rng.uniform();
        net.refresh_link(lid);
        break;
      }
      case 3: {  // admin drain toggle
        Link& l = net.link_mut(lid);
        l.admin_down = !l.admin_down;
        net.refresh_link(lid);
        break;
      }
      case 4: {  // device health toggle
        const DeviceId dev{static_cast<std::int32_t>(rng.index(n_devices))};
        net.set_device_health(dev, !net.device(dev).healthy);
        break;
      }
      case 5: {  // rewire to random distinct endpoints
        const DeviceId a{static_cast<std::int32_t>(rng.index(n_devices))};
        DeviceId b = a;
        while (b == a) b = DeviceId{static_cast<std::int32_t>(rng.index(n_devices))};
        net.rewire(lid, a, b);
        break;
      }
      default: break;
    }

    for (const PathPolicy& policy : kPolicies) {
      for (int pair = 0; pair < 6; ++pair) {
        const DeviceId a{static_cast<std::int32_t>(rng.index(n_devices))};
        const DeviceId b{static_cast<std::int32_t>(rng.index(n_devices))};
        const bool want = path_available_bfs(net, a, b, policy);
        ASSERT_EQ(net.connectivity().connected(a, b, policy), want)
            << "op " << op << " kind " << kind << " pair " << a.value() << "->"
            << b.value() << " flapping=" << policy.use_flapping
            << " degraded=" << policy.use_degraded;
        ASSERT_EQ(net.connectivity().shortest_path(a, b, policy),
                  reference_shortest_path(net, a, b, policy))
            << "op " << op << " kind " << kind << " pair " << a.value() << "->"
            << b.value();
      }
    }
    if (op % 50 == 0) {
      expect_group_index_matches_brute_force(net);
      net.check_invariants();
    }
  }
}

TEST(ConnectivityDifferential, LeafSpine) {
  run_differential(topology::build_leaf_spine({.leaves = 4, .spines = 2,
                                               .servers_per_leaf = 2,
                                               .uplinks_per_spine = 2}),
                   101, 400);
}

TEST(ConnectivityDifferential, FatTree) {
  run_differential(topology::build_fat_tree({.k = 4}), 202, 400);
}

TEST(ConnectivityDifferential, Jellyfish) {
  run_differential(
      topology::build_jellyfish({.switches = 10, .network_degree = 4, .servers_per_switch = 2}),
      303, 400);
}

TEST(ConnectivityDifferential, Xpander) {
  run_differential(
      topology::build_xpander({.network_degree = 3, .lift = 3, .servers_per_switch = 2}),
      404, 400);
}

TEST(ConnectivityDifferential, GpuCluster) {
  run_differential(topology::build_gpu_cluster({.gpu_servers = 8, .rails = 4, .spines = 2}),
                   505, 400);
}

TEST(ConnectivityEngineTest, QueryBurstAgainstQuietNetworkRebuildsOnce) {
  sim::Simulator sim;
  const topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 3, .uplinks_per_spine = 2});
  Network net{bp, Network::Config{}, sim};
  ConnectivityEngine& engine = net.connectivity();

  const std::uint64_t before = engine.rebuilds();
  const auto& servers = net.servers();
  for (std::size_t i = 0; i < servers.size(); ++i) {
    for (std::size_t j = 0; j < servers.size(); ++j) {
      EXPECT_TRUE(engine.connected(servers[i], servers[j]));
    }
  }
  // One forest build for the queried policy class, however many queries.
  EXPECT_EQ(engine.rebuilds(), before + 1);

  // A state change invalidates: next query rebuilds exactly once more.
  net.link_mut(LinkId{0}).cable.intact = false;
  net.refresh_link(LinkId{0});
  EXPECT_TRUE(engine.connected(servers[0], servers[0]));  // self: no rebuild needed
  EXPECT_EQ(engine.rebuilds(), before + 1);
  (void)engine.connected(servers[0], servers[1]);
  EXPECT_EQ(engine.rebuilds(), before + 2);
}

TEST(ConnectivityEngineTest, PolicyClassesInvalidateIndependently) {
  sim::Simulator sim;
  const topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 2, .spines = 2, .servers_per_leaf = 2, .uplinks_per_spine = 1});
  Network net{bp, Network::Config{}, sim};
  ConnectivityEngine& engine = net.connectivity();
  const DeviceId a = net.servers()[0];
  const DeviceId b = net.servers()[1];

  const PathPolicy strict{.use_flapping = false, .use_degraded = false};
  (void)engine.connected(a, b);          // builds the default-policy forest
  (void)engine.connected(a, b, strict);  // builds the strict forest
  const std::uint64_t built = engine.rebuilds();
  (void)engine.connected(a, b);
  (void)engine.connected(a, b, strict);
  EXPECT_EQ(engine.rebuilds(), built);  // both still fresh
}

TEST(ConnectivityEngineTest, CsrAdjacencyMirrorsJaggedIndex) {
  sim::Simulator sim;
  const topology::Blueprint bp = topology::build_fat_tree({.k = 4});
  Network net{bp, Network::Config{}, sim};
  const CsrAdjacency& adj = net.adjacency();
  ASSERT_EQ(adj.offsets.size(), net.devices().size() + 1);
  ASSERT_EQ(adj.peer.size(), net.links().size() * 2);
  for (const Device& d : net.devices()) {
    const auto [begin, end] = adj.row(d.id);
    const auto& row = net.links_at(d.id);
    ASSERT_EQ(static_cast<std::size_t>(end - begin), row.size());
    for (std::size_t k = 0; k < row.size(); ++k) {
      EXPECT_EQ(adj.link[static_cast<std::size_t>(begin) + k], row[k]);
      const Link& l = net.link(row[k]);
      const DeviceId expect_peer =
          l.end_a.device == d.id ? l.end_b.device : l.end_a.device;
      EXPECT_EQ(adj.peer[static_cast<std::size_t>(begin) + k], expect_peer);
    }
  }

  // Rewire invalidates and the rebuilt CSR tracks the new endpoints.
  const LinkId moved{0};
  const DeviceId na{static_cast<std::int32_t>(net.devices().size() - 1)};
  const DeviceId nb{static_cast<std::int32_t>(net.devices().size() - 2)};
  net.rewire(moved, na, nb);
  const CsrAdjacency& fresh = net.adjacency();
  const auto [begin, end] = fresh.row(na);
  bool found = false;
  for (std::int32_t k = begin; k < end; ++k) {
    if (fresh.link[static_cast<std::size_t>(k)] == moved) found = true;
  }
  EXPECT_TRUE(found);
  net.check_invariants();
}

}  // namespace
}  // namespace smn::net
