// Tests for the chassis line-card model: port-group health, fault injection,
// escalation routing, and end-to-end repair.
#include <gtest/gtest.h>

#include "core/escalation.h"
#include "scenario/world.h"
#include "test_util.h"
#include "topology/builders.h"

namespace smn::net {
namespace {

using sim::Duration;

struct LineCardFixture : ::testing::Test {
  sim::Simulator sim;
  // Spines have 12 leaf-facing ports; with 4 ports/card each spine has 3 cards.
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 12, .spines = 2, .servers_per_leaf = 1, .uplinks_per_spine = 1});

  Network::Config config() {
    Network::Config cfg = testutil::short_aoc();
    cfg.chassis_ports_per_linecard = 4;
    return cfg;
  }
};

TEST_F(LineCardFixture, ChassisSwitchesGetCardsServersDoNot) {
  Network net{bp, config(), sim};
  for (const Device& d : net.devices()) {
    if (d.role == topology::NodeRole::kSpineSwitch) {
      EXPECT_TRUE(d.has_linecards());
      EXPECT_EQ(d.linecards_healthy.size(), 3u);  // 12 ports / 4 per card
    } else {
      EXPECT_FALSE(d.has_linecards());
      EXPECT_TRUE(d.card_healthy(0));
    }
  }
}

TEST_F(LineCardFixture, CardFailureDownsExactlyItsPortGroup) {
  Network net{bp, config(), sim};
  const DeviceId spine = net.devices_with_role(topology::NodeRole::kSpineSwitch)[0];
  net.set_linecard_health(spine, 1, false);
  std::size_t down = 0;
  for (const LinkId lid : net.links_at(spine)) {
    const Link& l = net.link(lid);
    const int port = l.end_a.device == spine ? l.end_a.port : l.end_b.port;
    if (port / 4 == 1) {
      EXPECT_EQ(l.state, LinkState::kDown);
      ++down;
    } else {
      EXPECT_EQ(l.state, LinkState::kUp);
    }
  }
  EXPECT_EQ(down, 4u);
  net.set_linecard_health(spine, 1, true);
  EXPECT_EQ(net.count_links(LinkState::kDown), 0u);
}

TEST_F(LineCardFixture, SetCardHealthValidatesArguments) {
  Network net{bp, config(), sim};
  const DeviceId spine = net.devices_with_role(topology::NodeRole::kSpineSwitch)[0];
  EXPECT_THROW(net.set_linecard_health(spine, 99, false), std::out_of_range);
  const DeviceId srv = net.servers()[0];
  EXPECT_THROW(net.set_linecard_health(srv, 0, false), std::out_of_range);
}

TEST_F(LineCardFixture, EscalationRoutesToCardReplacement) {
  Network net{bp, config(), sim};
  maintenance::TicketSystem tickets;
  core::EscalationPolicy policy;
  const DeviceId spine = net.devices_with_role(topology::NodeRole::kSpineSwitch)[0];
  net.set_linecard_health(spine, 0, false);
  // Find a downed link on that card.
  LinkId victim;
  for (const LinkId lid : net.links_at(spine)) {
    if (net.link(lid).state == LinkState::kDown) {
      victim = lid;
      break;
    }
  }
  maintenance::Ticket t;
  t.id = 0;
  t.link = victim;
  t.opened = sim.now();
  const core::EscalationDecision d = policy.decide(net, tickets, t);
  EXPECT_EQ(d.kind, maintenance::RepairActionKind::kReplaceLineCard);
  const Link& l = net.link(victim);
  const DeviceId at = d.end == 0 ? l.end_a.device : l.end_b.device;
  EXPECT_EQ(at, spine);
}

TEST_F(LineCardFixture, ApplyActionSwapsTheCard) {
  Network net{bp, config(), sim};
  fault::Environment env;
  sim::RngFactory rngs{3};
  sim::RngStream rng = rngs.stream("a");
  const DeviceId spine = net.devices_with_role(topology::NodeRole::kSpineSwitch)[0];
  net.set_linecard_health(spine, 2, false);
  LinkId victim;
  int end = 0;
  for (const LinkId lid : net.links_at(spine)) {
    if (net.link(lid).state == LinkState::kDown) {
      victim = lid;
      end = net.link(lid).end_a.device == spine ? 0 : 1;
      break;
    }
  }
  maintenance::WorkQuality perfect{.clean_effectiveness = 1, .clean_verify_pass = 1,
                                   .botch_probability = 0};
  const maintenance::ActionResult r = maintenance::apply_action(
      net, nullptr, rng, victim, end, maintenance::RepairActionKind::kReplaceLineCard,
      perfect);
  EXPECT_TRUE(r.performed);
  EXPECT_EQ(net.count_links(LinkState::kDown), 0u);
}

TEST_F(LineCardFixture, ApplyOnMonolithicBoxIsNotPerformed) {
  Network net{bp, config(), sim};
  sim::RngFactory rngs{3};
  sim::RngStream rng = rngs.stream("a");
  // End 0 of a server access link is the server (monolithic).
  const DeviceId srv = net.servers()[0];
  const LinkId access = net.links_at(srv)[0];
  maintenance::WorkQuality q;
  const maintenance::ActionResult r = maintenance::apply_action(
      net, nullptr, rng, access, 0, maintenance::RepairActionKind::kReplaceLineCard, q);
  EXPECT_FALSE(r.performed);
}

TEST_F(LineCardFixture, EndToEndCardRepairAtL0AndL4) {
  for (const core::AutomationLevel level :
       {core::AutomationLevel::kL0_Manual, core::AutomationLevel::kL4_FullAutomation}) {
    scenario::WorldConfig cfg = scenario::WorldConfig::for_level(level);
    cfg.network = config();
    cfg.faults.transceiver_afr = 0;
    cfg.faults.cable_afr = 0;
    cfg.faults.switch_afr = 0;
    cfg.faults.server_nic_afr = 0;
    cfg.faults.linecard_afr = 0;
    cfg.faults.gray_rate_per_year = 0;
    cfg.contamination.mean_accumulation_per_day = 0;
    cfg.detection.false_positive_per_year = 0;
    cfg.technicians.quality.botch_probability = 0;
    cfg.fleet.failure_per_job = 0;
    scenario::World world{bp, cfg};
    world.start();
    const DeviceId spine =
        world.network().devices_with_role(topology::NodeRole::kSpineSwitch)[0];
    world.injector().inject_linecard_failure(spine, 0);
    EXPECT_EQ(world.injector().count(fault::FaultKind::kLineCardFailure), 1u);
    world.run_for(Duration::days(14));
    EXPECT_EQ(world.network().count_links(LinkState::kDown), 0u)
        << core::to_string(level);
  }
}

TEST_F(LineCardFixture, BackgroundInjectionProducesCardFailures) {
  scenario::WorldConfig cfg =
      scenario::WorldConfig::for_level(core::AutomationLevel::kL0_Manual);
  cfg.network = config();
  cfg.faults.linecard_afr = 3.0;  // accelerated
  cfg.technicians.technicians = 0;
  scenario::World world{bp, cfg};
  world.run_for(Duration::days(120));
  EXPECT_GT(world.injector().count(fault::FaultKind::kLineCardFailure), 0u);
}

}  // namespace
}  // namespace smn::net
