// Tests for physical layout, blueprint invariants, topology builders, and the
// wiring / self-maintainability metrics.
#include <gtest/gtest.h>

#include <set>

#include "topology/blueprint.h"
#include "topology/builders.h"
#include "topology/metrics.h"
#include "topology/physical.h"

namespace smn::topology {
namespace {

PhysicalLayout small_layout() {
  PhysicalLayout::Config cfg;
  cfg.halls = 1;
  cfg.rows_per_hall = 3;
  cfg.racks_per_row = 8;
  cfg.rack_units = 48;
  return PhysicalLayout{cfg};
}

TEST(PhysicalLayout, RejectsBadConfig) {
  PhysicalLayout::Config cfg;
  cfg.racks_per_row = 0;
  EXPECT_THROW(PhysicalLayout{cfg}, std::invalid_argument);
  cfg = {};
  cfg.slack_factor = 0.9;
  EXPECT_THROW(PhysicalLayout{cfg}, std::invalid_argument);
}

TEST(PhysicalLayout, ContainsAndPosition) {
  const PhysicalLayout layout = small_layout();
  EXPECT_TRUE(layout.contains(RackLocation{0, 0, 0, 0}));
  EXPECT_TRUE(layout.contains(RackLocation{0, 2, 7, 47}));
  EXPECT_FALSE(layout.contains(RackLocation{0, 3, 0, 0}));
  EXPECT_FALSE(layout.contains(RackLocation{0, 0, 8, 0}));
  EXPECT_FALSE(layout.contains(RackLocation{0, 0, 0, 48}));
  EXPECT_FALSE(layout.contains(RackLocation{-1, 0, 0, 0}));

  const Point p = layout.position(RackLocation{0, 1, 2, 10});
  EXPECT_DOUBLE_EQ(p.x, 2 * 0.7);
  EXPECT_DOUBLE_EQ(p.y, 1 * 3.0);
  EXPECT_DOUBLE_EQ(p.z, 10 * 0.0445);
  EXPECT_THROW((void)layout.position(RackLocation{0, 9, 0, 0}), std::out_of_range);
}

TEST(PhysicalLayout, WalkingDistanceSameRowIsAisleDistance) {
  const PhysicalLayout layout = small_layout();
  const double d =
      layout.walking_distance_m(RackLocation{0, 1, 0, 0}, RackLocation{0, 1, 4, 0});
  EXPECT_DOUBLE_EQ(d, 4 * 0.7);
}

TEST(PhysicalLayout, WalkingDistanceCrossRowGoesViaRowHead) {
  const PhysicalLayout layout = small_layout();
  const double d =
      layout.walking_distance_m(RackLocation{0, 0, 2, 0}, RackLocation{0, 2, 3, 0});
  EXPECT_DOUBLE_EQ(d, 2 * 0.7 + 3 * 0.7 + 2 * 3.0);
}

TEST(PhysicalLayout, SameRackCableHasNoTraySegments) {
  const PhysicalLayout layout = small_layout();
  const CableRoute r =
      layout.route_cable(RackLocation{0, 0, 0, 5}, RackLocation{0, 0, 0, 40});
  EXPECT_TRUE(r.segments.empty());
  EXPECT_GT(r.length_m, 1.0);
  EXPECT_LT(r.length_m, 4.0);
}

TEST(PhysicalLayout, SameRowCableUsesRowTray) {
  const PhysicalLayout layout = small_layout();
  const CableRoute r =
      layout.route_cable(RackLocation{0, 1, 1, 40}, RackLocation{0, 1, 5, 40});
  bool has_riser = false, has_row = false, has_spine = false;
  for (const TraySegment& s : r.segments) {
    has_riser |= s.kind == TraySegment::Kind::kRiser;
    has_row |= s.kind == TraySegment::Kind::kRowTray;
    has_spine |= s.kind == TraySegment::Kind::kSpineTray;
  }
  EXPECT_TRUE(has_riser);
  EXPECT_TRUE(has_row);
  EXPECT_FALSE(has_spine);
  // 4 rack pitches horizontal + 2 vertical runs, with slack.
  EXPECT_GT(r.length_m, 4 * 0.7);
}

TEST(PhysicalLayout, CrossRowCableUsesSpineTray) {
  const PhysicalLayout layout = small_layout();
  const CableRoute r =
      layout.route_cable(RackLocation{0, 0, 3, 40}, RackLocation{0, 2, 4, 40});
  bool has_spine = false;
  for (const TraySegment& s : r.segments) {
    has_spine |= s.kind == TraySegment::Kind::kSpineTray;
  }
  EXPECT_TRUE(has_spine);
}

TEST(PhysicalLayout, OverlappingRoutesShareSegments) {
  const PhysicalLayout layout = small_layout();
  const CableRoute r1 =
      layout.route_cable(RackLocation{0, 1, 0, 40}, RackLocation{0, 1, 6, 40});
  const CableRoute r2 =
      layout.route_cable(RackLocation{0, 1, 2, 40}, RackLocation{0, 1, 4, 40});
  std::set<TraySegment> s1(r1.segments.begin(), r1.segments.end());
  int shared = 0;
  for (const TraySegment& s : r2.segments) shared += s1.count(s);
  EXPECT_GE(shared, 2);  // r2's row-tray slots 2..3 lie inside r1's 0..5
}

TEST(Blueprint, ConnectAssignsSequentialPorts) {
  Blueprint bp{small_layout()};
  const int a = bp.add_node("a", NodeRole::kTorSwitch, RackLocation{0, 0, 0, 47});
  const int b = bp.add_node("b", NodeRole::kServer, RackLocation{0, 0, 0, 40});
  const int c = bp.add_node("c", NodeRole::kServer, RackLocation{0, 0, 0, 41});
  bp.connect(a, b, 100.0);
  bp.connect(a, c, 100.0);
  EXPECT_EQ(bp.node(a).ports_used, 2);
  EXPECT_EQ(bp.link(0).port_a, 0);
  EXPECT_EQ(bp.link(1).port_a, 1);
  bp.validate();
}

TEST(Blueprint, RejectsInvalidConnects) {
  Blueprint bp{small_layout()};
  const int a = bp.add_node("a", NodeRole::kTorSwitch, RackLocation{0, 0, 0, 47});
  EXPECT_THROW(bp.connect(a, a, 100.0), std::invalid_argument);
  EXPECT_THROW(bp.connect(a, 99, 100.0), std::out_of_range);
  const int b = bp.add_node("b", NodeRole::kServer, RackLocation{0, 0, 0, 40});
  EXPECT_THROW(bp.connect(a, b, 0.0), std::invalid_argument);
  EXPECT_THROW(bp.add_node("x", NodeRole::kServer, RackLocation{0, 99, 0, 0}),
               std::out_of_range);
}

TEST(FatTree, HasCanonicalCounts) {
  const Blueprint bp = build_fat_tree({.k = 4});
  EXPECT_EQ(bp.count_nodes(NodeRole::kCoreSwitch), 4u);   // (k/2)^2
  EXPECT_EQ(bp.count_nodes(NodeRole::kAggSwitch), 8u);    // k * k/2
  EXPECT_EQ(bp.count_nodes(NodeRole::kTorSwitch), 8u);    // k * k/2
  EXPECT_EQ(bp.server_count(), 16u);                      // k^3/4
  // Links: servers 16 + tor-agg k*(k/2)^2=16 + agg-core 16.
  EXPECT_EQ(bp.links().size(), 48u);
}

TEST(FatTree, EveryAggConnectsToHalfKCores) {
  const Blueprint bp = build_fat_tree({.k = 4});
  const auto adj = bp.adjacency();
  for (int i = 0; i < static_cast<int>(bp.nodes().size()); ++i) {
    if (bp.node(i).role != NodeRole::kAggSwitch) continue;
    int cores = 0;
    for (const auto& [peer, link] : adj[static_cast<size_t>(i)]) {
      if (bp.node(peer).role == NodeRole::kCoreSwitch) ++cores;
    }
    EXPECT_EQ(cores, 2);
  }
}

TEST(FatTree, RejectsOddOrTinyK) {
  EXPECT_THROW(build_fat_tree({.k = 5}), std::invalid_argument);
  EXPECT_THROW(build_fat_tree({.k = 2}), std::invalid_argument);
}

TEST(LeafSpine, CountsAndUplinkMultiplicity) {
  const Blueprint bp =
      build_leaf_spine({.leaves = 4, .spines = 2, .servers_per_leaf = 3, .uplinks_per_spine = 2});
  EXPECT_EQ(bp.count_nodes(NodeRole::kSpineSwitch), 2u);
  EXPECT_EQ(bp.count_nodes(NodeRole::kTorSwitch), 4u);
  EXPECT_EQ(bp.server_count(), 12u);
  // Links: 12 server + 4 leaves * 2 spines * 2 uplinks = 28.
  EXPECT_EQ(bp.links().size(), 28u);
}

TEST(Jellyfish, IsRegularAndSimple) {
  const Blueprint bp = build_jellyfish(
      {.switches = 20, .network_degree = 4, .servers_per_switch = 2, .seed = 3});
  EXPECT_EQ(bp.switch_count(), 20u);
  EXPECT_EQ(bp.server_count(), 40u);
  const auto adj = bp.adjacency();
  std::set<std::pair<int, int>> seen;
  for (int i = 0; i < static_cast<int>(bp.nodes().size()); ++i) {
    if (!is_switch(bp.node(i).role)) continue;
    int fabric = 0;
    for (const auto& [peer, link] : adj[static_cast<size_t>(i)]) {
      if (is_switch(bp.node(peer).role)) {
        ++fabric;
        auto e = std::minmax(i, peer);
        seen.insert({e.first, e.second});
      }
    }
    EXPECT_EQ(fabric, 4) << "switch " << i;
  }
  EXPECT_EQ(seen.size(), 40u);  // 20*4/2 distinct edges, no multi-edges
}

TEST(Jellyfish, DeterministicForSeed) {
  const Blueprint a = build_jellyfish({.switches = 16, .network_degree = 4, .seed = 9});
  const Blueprint b = build_jellyfish({.switches = 16, .network_degree = 4, .seed = 9});
  ASSERT_EQ(a.links().size(), b.links().size());
  for (std::size_t i = 0; i < a.links().size(); ++i) {
    EXPECT_EQ(a.links()[i].node_a, b.links()[i].node_a);
    EXPECT_EQ(a.links()[i].node_b, b.links()[i].node_b);
  }
}

TEST(Xpander, LiftProducesRegularGraph) {
  const Blueprint bp =
      build_xpander({.network_degree = 4, .lift = 6, .servers_per_switch = 0, .seed = 5});
  EXPECT_EQ(bp.switch_count(), 30u);  // (d+1)*L
  const auto adj = bp.adjacency();
  for (int i = 0; i < static_cast<int>(bp.nodes().size()); ++i) {
    EXPECT_EQ(adj[static_cast<size_t>(i)].size(), 4u);
  }
}

TEST(Dragonfly, CanonicalStructure) {
  // a=4, h=2 => g = 9 groups, 36 routers; local mesh 6 links/group,
  // globals = C(9,2) = 36.
  const Blueprint bp = build_dragonfly(
      {.routers_per_group = 4, .servers_per_router = 2, .global_per_router = 2});
  EXPECT_EQ(bp.switch_count(), 36u);
  EXPECT_EQ(bp.server_count(), 72u);
  // Links: 72 server + 9*C(4,2)=54 local + C(9,2)=36 global = 162.
  EXPECT_EQ(bp.links().size(), 162u);
  // Every router terminates at most h=2 global (cross-row) links.
  const auto adj = bp.adjacency();
  for (int i = 0; i < static_cast<int>(bp.nodes().size()); ++i) {
    if (!is_switch(bp.node(i).role)) continue;
    int globals = 0;
    for (const auto& [peer, link] : adj[static_cast<size_t>(i)]) {
      if (is_switch(bp.node(peer).role) &&
          !bp.node(i).location.same_row(bp.node(peer).location)) {
        ++globals;
      }
    }
    EXPECT_LE(globals, 2);
  }
}

TEST(Dragonfly, EveryGroupPairHasAGlobalLink) {
  const Blueprint bp = build_dragonfly(
      {.routers_per_group = 3, .servers_per_router = 1, .global_per_router = 1});
  // g = 4 groups -> 6 global links, each group pair exactly once.
  std::set<std::pair<int, int>> pairs;
  for (const LinkSpec& l : bp.links()) {
    const auto& la = bp.node(l.node_a).location;
    const auto& lb = bp.node(l.node_b).location;
    if (is_switch(bp.node(l.node_a).role) && is_switch(bp.node(l.node_b).role) &&
        !la.same_row(lb)) {
      pairs.insert({std::min(la.row, lb.row), std::max(la.row, lb.row)});
    }
  }
  EXPECT_EQ(pairs.size(), 6u);
}

TEST(Torus2d, EveryNodeHasDegreeFourPlusServers) {
  const Blueprint bp = build_torus2d({.x = 5, .y = 4, .servers_per_node = 2});
  EXPECT_EQ(bp.switch_count(), 20u);
  EXPECT_EQ(bp.links().size(), 20u * 2 + 40u);  // 2 fabric links per node + servers
  const auto adj = bp.adjacency();
  for (int i = 0; i < static_cast<int>(bp.nodes().size()); ++i) {
    if (!is_switch(bp.node(i).role)) continue;
    int fabric = 0;
    for (const auto& [peer, link] : adj[static_cast<size_t>(i)]) {
      if (is_switch(bp.node(peer).role)) ++fabric;
    }
    EXPECT_EQ(fabric, 4) << "node " << i;
  }
}

TEST(Torus2d, WrapLinksAreTheLongRuns) {
  const Blueprint bp = build_torus2d({.x = 6, .y = 4, .servers_per_node = 0});
  double longest = 0, shortest = 1e18;
  for (const LinkSpec& l : bp.links()) {
    longest = std::max(longest, l.route.length_m);
    shortest = std::min(shortest, l.route.length_m);
  }
  EXPECT_GT(longest, shortest * 3.0);  // wrap spans the grid
}

TEST(Torus2d, RejectsDegenerateGrids) {
  EXPECT_THROW(build_torus2d({.x = 2, .y = 5}), std::invalid_argument);
}

TEST(GpuCluster, RailWiring) {
  const Blueprint bp = build_gpu_cluster({.gpu_servers = 8, .rails = 4, .spines = 2});
  EXPECT_EQ(bp.count_nodes(NodeRole::kRailSwitch), 4u);
  EXPECT_EQ(bp.count_nodes(NodeRole::kGpuServer), 8u);
  const auto adj = bp.adjacency();
  for (int i = 0; i < static_cast<int>(bp.nodes().size()); ++i) {
    if (bp.node(i).role == NodeRole::kGpuServer) {
      EXPECT_EQ(adj[static_cast<size_t>(i)].size(), 4u);  // one NIC per rail
    }
  }
}

TEST(WiringStats, ClassifiesCableScopes) {
  const Blueprint bp = build_leaf_spine({.leaves = 4, .spines = 2, .servers_per_leaf = 3});
  const WiringStats st = compute_wiring_stats(bp);
  EXPECT_EQ(st.links, bp.links().size());
  EXPECT_EQ(st.in_rack, 12u);            // server->leaf cables stay in the rack
  EXPECT_EQ(st.same_row + st.cross_row, 8u);  // uplinks leave the rack
  EXPECT_GT(st.total_length_m, 0.0);
  EXPECT_GE(st.max_length_m, st.mean_length_m);
  EXPECT_GT(st.length_classes, 0u);
}

TEST(WiringStats, EmptyBlueprintIsZero) {
  Blueprint bp{small_layout()};
  const WiringStats st = compute_wiring_stats(bp);
  EXPECT_EQ(st.links, 0u);
  EXPECT_DOUBLE_EQ(st.total_length_m, 0.0);
}

TEST(SelfMaintainability, SubScoresAreInRange) {
  for (const Blueprint& bp :
       {build_fat_tree({.k = 4}), build_leaf_spine({.leaves = 8, .spines = 4}),
        build_jellyfish({.switches = 20, .network_degree = 4, .seed = 2})}) {
    const SelfMaintainability m = compute_self_maintainability(bp);
    for (const double v :
         {m.reachability, m.occlusion, m.uniformity, m.blast_radius, m.port_density}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    EXPECT_GT(m.score, 0.0);
    EXPECT_LE(m.score, 100.0);
  }
}

TEST(SelfMaintainability, RandomGraphScoresBelowLeafSpineAtScale) {
  // The paper's §4 deployability argument: expander wiring is messier. At
  // matched server count (256) the random graph should score lower, chiefly
  // because its cables cannot be bundled into looms.
  const Blueprint ls = build_leaf_spine({.leaves = 64, .spines = 16, .servers_per_leaf = 4});
  const Blueprint jf = build_jellyfish(
      {.switches = 64, .network_degree = 16, .servers_per_switch = 4, .seed = 4});
  const SelfMaintainability mls = compute_self_maintainability(ls);
  const SelfMaintainability mjf = compute_self_maintainability(jf);
  EXPECT_GT(mls.bundling, mjf.bundling);
  EXPECT_GT(mls.score, mjf.score);
}

TEST(SelfMaintainability, LeafSpineUplinksBundlePerfectlyPerSpineRack) {
  // 16 spines live in 4 racks of 4; every leaf sends 16 uplinks to 4 rack
  // destinations, so 4x-bundling: distinct rack pairs = out_of_rack / 4.
  const Blueprint ls = build_leaf_spine({.leaves = 64, .spines = 16, .servers_per_leaf = 4});
  const WiringStats st = compute_wiring_stats(ls);
  EXPECT_EQ(st.out_of_rack_cables, 1024u);
  EXPECT_EQ(st.distinct_rack_pairs, 256u);
}

TEST(SelfMaintainability, AllInRackIsPerfectlyBundled) {
  Blueprint bp{small_layout()};
  const int a = bp.add_node("a", NodeRole::kTorSwitch, RackLocation{0, 0, 0, 47});
  const int b = bp.add_node("b", NodeRole::kServer, RackLocation{0, 0, 0, 40});
  bp.connect(a, b, 100.0);
  const SelfMaintainability m = compute_self_maintainability(bp);
  EXPECT_DOUBLE_EQ(m.bundling, 1.0);
  EXPECT_DOUBLE_EQ(m.reachability, 1.0);
}

}  // namespace
}  // namespace smn::topology
