// Differential tests for tail-latency attribution (ISSUE 5 tentpole): over
// randomized fault episodes on every topology preset, the per-link-state
// decomposition (`LoadReport::tail_by_state`) and the `net_fct_factor_*`
// histograms fed through TrafficInstruments must equal a brute-force
// recomputation with a verbatim reference BFS — same oracle style as
// connectivity_test.cpp. Also pins directed cases for each attribution state.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "net/traffic.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "test_util.h"
#include "topology/builders.h"

namespace smn::net {
namespace {

// Distances to `dst` over usable links and healthy devices — the semantics
// of ConnectivityEngine::bfs_distances, reimplemented verbatim.
std::vector<int> reference_usable_dist(const Network& net, DeviceId dst,
                                       const PathPolicy& policy) {
  std::vector<int> dist(net.devices().size(), -1);
  std::vector<DeviceId> queue;
  dist[static_cast<std::size_t>(dst.value())] = 0;
  queue.push_back(dst);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const DeviceId cur = queue[head];
    const int next = dist[static_cast<std::size_t>(cur.value())] + 1;
    for (const LinkId lid : net.links_at(cur)) {
      const Link& l = net.link(lid);
      if (!link_usable(l, policy)) continue;
      const DeviceId peer = l.end_a.device == cur ? l.end_b.device : l.end_a.device;
      if (!net.device(peer).healthy) continue;
      int& d = dist[static_cast<std::size_t>(peer.value())];
      if (d >= 0) continue;
      d = next;
      queue.push_back(peer);
    }
  }
  return dist;
}

// Distances to `dst` over ALL links regardless of state or device health —
// the pristine-fabric metric the engine's detour detection compares against.
std::vector<int> reference_structural_dist(const Network& net, DeviceId dst) {
  std::vector<int> dist(net.devices().size(), -1);
  std::vector<DeviceId> queue;
  dist[static_cast<std::size_t>(dst.value())] = 0;
  queue.push_back(dst);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const DeviceId cur = queue[head];
    const int next = dist[static_cast<std::size_t>(cur.value())] + 1;
    for (const LinkId lid : net.links_at(cur)) {
      const Link& l = net.link(lid);
      const DeviceId peer = l.end_a.device == cur ? l.end_b.device : l.end_a.device;
      int& d = dist[static_cast<std::size_t>(peer.value())];
      if (d >= 0) continue;
      d = next;
      queue.push_back(peer);
    }
  }
  return dist;
}

struct RefOutcome {
  bool routed = false;
  TailState state = TailState::kUp;
  double tail_factor = 1.0;
};

// Brute-force attribution of one flow: walk the shortest-path DAG reachable
// from src, take the worst state over every link it could use, fall back to
// the structural-detour check when the DAG is clean.
RefOutcome reference_attribution(const Network& net, DeviceId src, DeviceId dst,
                                 const PathPolicy& policy) {
  RefOutcome out;
  const std::vector<int> dist = reference_usable_dist(net, dst, policy);
  const int total = dist[static_cast<std::size_t>(src.value())];
  if (total < 0) return out;
  out.routed = true;

  LinkState worst = LinkState::kUp;
  std::vector<char> visited(net.devices().size(), 0);
  std::vector<DeviceId> stack{src};
  visited[static_cast<std::size_t>(src.value())] = 1;
  while (!stack.empty()) {
    const DeviceId node = stack.back();
    stack.pop_back();
    const int d = dist[static_cast<std::size_t>(node.value())];
    if (d == 0) continue;
    for (const LinkId lid : net.links_at(node)) {
      const Link& l = net.link(lid);
      if (!link_usable(l, policy)) continue;
      const DeviceId peer = l.end_a.device == node ? l.end_b.device : l.end_a.device;
      if (dist[static_cast<std::size_t>(peer.value())] != d - 1) continue;
      if (static_cast<int>(l.state) > static_cast<int>(worst)) worst = l.state;
      char& seen = visited[static_cast<std::size_t>(peer.value())];
      if (seen == 0) {
        seen = 1;
        stack.push_back(peer);
      }
    }
  }

  if (worst == LinkState::kFlapping) {
    out.state = TailState::kFlapping;
  } else if (worst == LinkState::kDegraded) {
    out.state = TailState::kImpaired;
  } else {
    const std::vector<int> structural = reference_structural_dist(net, dst);
    out.state = total > structural[static_cast<std::size_t>(src.value())]
                    ? TailState::kDownRerouted
                    : TailState::kUp;
  }
  out.tail_factor = tail_latency_factor(Link::loss_rate(worst));
  return out;
}

// Histogram bucketing brute force, mirroring obs::Histogram::observe.
std::size_t reference_bucket(double v) {
  const std::vector<double>& bounds = fct_factor_bounds();
  std::size_t i = 0;
  while (i < bounds.size() && v > bounds[i]) ++i;
  return i;
}

constexpr std::array<const char*, kTailStateCount> kHistNames = {
    "net_fct_factor_up", "net_fct_factor_impaired", "net_fct_factor_flapping",
    "net_fct_factor_down_rerouted"};

void run_differential(const topology::Blueprint& bp, std::uint64_t seed, int rounds) {
  sim::Simulator sim;
  Network net{bp, testutil::short_aoc(), sim};
  sim::RngFactory rngs{seed};
  sim::RngStream rng = rngs.stream("tail.differential");

  const std::size_t n_links = net.links().size();
  const std::size_t n_devices = net.devices().size();
  ASSERT_GE(net.servers().size(), 4u);

  const PathPolicy policies[] = {
      {.use_flapping = true, .use_degraded = true},
      {.use_flapping = false, .use_degraded = true},
  };

  std::size_t states_seen[kTailStateCount] = {};

  for (int round = 0; round < rounds; ++round) {
    // Advance simulated time so earlier gray episodes expire — without this
    // flapping accumulates monotonically and the Degraded class is starved.
    sim.run_until(sim.now() + sim::Duration::hours(1));
    net.refresh_all();
    // A burst of random fault / recovery mutations; gray episodes make
    // Flapping common, which is what this drill-down is about.
    for (int m = 0; m < 8; ++m) {
      const LinkId lid{static_cast<std::int32_t>(rng.index(n_links))};
      switch (static_cast<int>(rng.uniform_int(0, 5))) {
        case 0:  // flapping episode
          net.link_mut(lid).gray_until =
              sim.now() + sim::Duration::minutes(5 + static_cast<int>(rng.index(115)));
          break;
        case 1:  // contamination straddling the degrade/flap thresholds
          net.link_mut(lid).end_a.condition.contamination = 0.3 + 0.4 * rng.uniform();
          break;
        case 2:  // hard down
          net.link_mut(lid).cable.intact = false;
          break;
        case 3: {  // full repair
          Link& l = net.link_mut(lid);
          l.cable = CableCondition{};
          l.end_a.condition = EndCondition{};
          l.end_b.condition = EndCondition{};
          l.gray_until = sim::TimePoint::origin();
          l.admin_down = false;
          break;
        }
        case 4: {  // device health toggle
          const DeviceId dev{static_cast<std::int32_t>(rng.index(n_devices))};
          net.set_device_health(dev, !net.device(dev).healthy);
          break;
        }
        case 5:  // admin drain toggle
          net.link_mut(lid).admin_down = !net.link_mut(lid).admin_down;
          break;
        default: break;
      }
      net.refresh_link(lid);
    }

    const TrafficMatrix tm = TrafficMatrix::uniform(net, 40, 1.0 + rng.uniform(), rng);
    for (const PathPolicy& policy : policies) {
      const LoadReport report = route_and_load(net, tm, policy);

      // Brute-force recomputation of the whole decomposition.
      std::array<TailBucket, kTailStateCount> want{};
      std::array<std::vector<std::uint64_t>, kTailStateCount> want_hist;
      for (auto& h : want_hist) h.assign(fct_factor_bounds().size() + 1, 0);
      std::size_t want_unroutable = 0;
      std::size_t routed = 0;
      for (const Flow& f : tm.flows) {
        const RefOutcome ref = reference_attribution(net, f.src, f.dst, policy);
        if (!ref.routed) {
          ++want_unroutable;
          continue;
        }
        const auto s = static_cast<std::size_t>(ref.state);
        ++want.at(s).flows;
        want.at(s).demand_gbps += f.gbps;
        want.at(s).tail_sum += ref.tail_factor;
        want.at(s).worst_tail = std::max(want.at(s).worst_tail, ref.tail_factor);
        ++want_hist.at(s)[reference_bucket(ref.tail_factor)];
        ++states_seen[s];
        // Per-flow agreement, in matrix order.
        ASSERT_LT(routed, report.flow_outcomes.size());
        const FlowOutcome& fo = report.flow_outcomes[routed];
        ASSERT_EQ(fo.flow_index, static_cast<std::size_t>(&f - tm.flows.data()));
        ASSERT_EQ(fo.state, ref.state) << "round " << round << " flow " << fo.flow_index;
        ASSERT_DOUBLE_EQ(fo.tail_factor, ref.tail_factor);
        ++routed;
      }
      ASSERT_EQ(report.unroutable_flows, want_unroutable);
      ASSERT_EQ(report.flow_outcomes.size(), routed);

      for (std::size_t s = 0; s < kTailStateCount; ++s) {
        ASSERT_EQ(report.tail_by_state.at(s).flows, want.at(s).flows) << "state " << s;
        ASSERT_DOUBLE_EQ(report.tail_by_state.at(s).demand_gbps, want.at(s).demand_gbps);
        ASSERT_DOUBLE_EQ(report.tail_by_state.at(s).tail_sum, want.at(s).tail_sum);
        ASSERT_DOUBLE_EQ(report.tail_by_state.at(s).worst_tail, want.at(s).worst_tail);
      }

      // Feed a fresh registry and compare histogram totals bucket by bucket.
      obs::Registry reg;
      TrafficInstruments instruments{reg};
      instruments.observe(report);
      for (std::size_t s = 0; s < kTailStateCount; ++s) {
        const obs::Histogram* h = reg.histogram(kHistNames.at(s), fct_factor_bounds());
        ASSERT_EQ(h->counts(), want_hist.at(s)) << "state " << s << " round " << round;
        ASSERT_EQ(h->count(), want.at(s).flows);
      }
      ASSERT_EQ(reg.counter("net_flows_unroutable_total")->value(), want_unroutable);
    }
  }

  // The randomized run must actually exercise the lossy attribution states,
  // otherwise the oracle proved nothing about them.
  EXPECT_GT(states_seen[static_cast<std::size_t>(TailState::kUp)], 0u);
  EXPECT_GT(states_seen[static_cast<std::size_t>(TailState::kImpaired)], 0u);
  EXPECT_GT(states_seen[static_cast<std::size_t>(TailState::kFlapping)], 0u);
}

TEST(TailAttributionDifferential, LeafSpine) {
  run_differential(topology::build_leaf_spine({.leaves = 4, .spines = 2,
                                               .servers_per_leaf = 2,
                                               .uplinks_per_spine = 2}),
                   111, 12);
}

TEST(TailAttributionDifferential, FatTree) {
  run_differential(topology::build_fat_tree({.k = 4}), 222, 12);
}

TEST(TailAttributionDifferential, Jellyfish) {
  run_differential(
      topology::build_jellyfish({.switches = 10, .network_degree = 4, .servers_per_switch = 2}),
      333, 12);
}

TEST(TailAttributionDifferential, Xpander) {
  run_differential(
      topology::build_xpander({.network_degree = 3, .lift = 3, .servers_per_switch = 2}),
      444, 12);
}

TEST(TailAttributionDifferential, GpuCluster) {
  run_differential(topology::build_gpu_cluster({.gpu_servers = 8, .rails = 4, .spines = 2}),
                   555, 12);
}

struct TailDirectedFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 2, .uplinks_per_spine = 1});
  Network net{bp, testutil::short_aoc(), sim};
  sim::RngFactory rngs{7};
  sim::RngStream rng = rngs.stream("tail.directed");

  /// One flow between servers on two distinct leaves.
  [[nodiscard]] TrafficMatrix cross_leaf_flow() {
    TrafficMatrix tm;
    tm.flows.push_back(Flow{net.servers().front(), net.servers().back(), 2.0});
    return tm;
  }
};

TEST_F(TailDirectedFixture, CleanFabricAttributesEverythingUp) {
  const LoadReport r = route_and_load(net, cross_leaf_flow());
  ASSERT_EQ(r.flow_outcomes.size(), 1u);
  EXPECT_EQ(r.flow_outcomes[0].state, TailState::kUp);
  EXPECT_EQ(r.tail_by_state[static_cast<std::size_t>(TailState::kUp)].flows, 1u);
  EXPECT_LT(r.flow_outcomes[0].tail_factor, 1.01);
}

TEST_F(TailDirectedFixture, FlappingUplinkOnDagWinsAttribution) {
  // Any flapping link on the ECMP DAG poisons the flow: the DAG between two
  // leaves spans both spines, so one gray uplink is enough.
  const DeviceId src_leaf = net.link(net.links_at(net.servers().front()).front()).end_b.device;
  LinkId uplink;
  for (const LinkId lid : net.links_at(src_leaf)) {
    const Link& l = net.link(lid);
    const DeviceId peer = l.end_a.device == src_leaf ? l.end_b.device : l.end_a.device;
    if (topology::is_switch(net.device(peer).role) && net.device(peer).role != net.device(src_leaf).role) {
      uplink = lid;
      break;
    }
  }
  ASSERT_TRUE(uplink.valid());
  net.link_mut(uplink).gray_until = sim.now() + sim::Duration::minutes(30);
  net.refresh_link(uplink);
  ASSERT_EQ(net.link(uplink).state, LinkState::kFlapping);

  const LoadReport r = route_and_load(net, cross_leaf_flow());
  ASSERT_EQ(r.flow_outcomes.size(), 1u);
  EXPECT_EQ(r.flow_outcomes[0].state, TailState::kFlapping);
  EXPECT_GT(r.flow_outcomes[0].tail_factor, 10.0);
  EXPECT_DOUBLE_EQ(
      r.tail_by_state[static_cast<std::size_t>(TailState::kFlapping)].demand_gbps, 2.0);
}

TEST(TailDirectedJellyfish, DetourAroundDownLinkIsAttributedDownRerouted) {
  sim::Simulator sim;
  const topology::Blueprint bp = topology::build_jellyfish(
      {.switches = 10, .network_degree = 4, .servers_per_switch = 2});
  Network net{bp, testutil::short_aoc(), sim};

  // Break a switch-to-switch link with no parallel sibling whose endpoints
  // both host servers: the server pair's shortest path elongates but every
  // remaining link is clean, which must classify as kDownRerouted.
  for (const Link& probe : net.links()) {
    const bool sw_sw = topology::is_switch(net.device(probe.end_a.device).role) &&
                       topology::is_switch(net.device(probe.end_b.device).role);
    if (!sw_sw || net.links_between(probe.end_a.device, probe.end_b.device).size() != 1) {
      continue;
    }
    DeviceId sa, sb;
    for (const DeviceId s : net.servers()) {
      const Link& host = net.link(net.links_at(s).front());
      const DeviceId sw = host.end_a.device == s ? host.end_b.device : host.end_a.device;
      if (sw == probe.end_a.device && !sa.valid()) sa = s;
      if (sw == probe.end_b.device && !sb.valid()) sb = s;
    }
    if (!sa.valid() || !sb.valid()) continue;

    net.link_mut(probe.id).cable.intact = false;
    net.refresh_link(probe.id);

    TrafficMatrix tm;
    tm.flows.push_back(Flow{sa, sb, 1.0});
    const LoadReport r = route_and_load(net, tm);
    if (r.unroutable_flows == 1) {  // graph got disconnected; try another link
      net.link_mut(probe.id).cable = CableCondition{};
      net.refresh_link(probe.id);
      continue;
    }
    ASSERT_EQ(r.flow_outcomes.size(), 1u);
    EXPECT_EQ(r.flow_outcomes[0].state, TailState::kDownRerouted);
    EXPECT_LT(r.flow_outcomes[0].tail_factor, 1.01);
    return;
  }
  FAIL() << "no suitable switch-switch link found in the jellyfish preset";
}

TEST(TailStateNames, RoundTrip) {
  EXPECT_STREQ(to_string(TailState::kUp), "up");
  EXPECT_STREQ(to_string(TailState::kImpaired), "impaired");
  EXPECT_STREQ(to_string(TailState::kFlapping), "flapping");
  EXPECT_STREQ(to_string(TailState::kDownRerouted), "down-rerouted");
}

}  // namespace
}  // namespace smn::net
