// Negative-fixture tests for the smn-analyze engine: synthetic sources and
// file trees are fed in directly and detection (and suppression) is asserted
// per rule family. The positive check — the real src/ tree is clean — runs as
// the `smn_analyze` ctest test.
#include "analyze_core.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace smn::analyze {
namespace {

[[nodiscard]] bool has_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

[[nodiscard]] int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return static_cast<int>(std::count_if(
      fs.begin(), fs.end(), [&](const Finding& f) { return f.rule == rule; }));
}

[[nodiscard]] int line_of_rule(const std::vector<Finding>& fs, const std::string& rule) {
  for (const Finding& f : fs) {
    if (f.rule == rule) return f.line;
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Include parsing.
// ---------------------------------------------------------------------------

TEST(AnalyzeIncludeTest, ParsesQuotedAndAngledIncludes) {
  const std::string source =
      "#include \"net/network.h\"\n"
      "#include <vector>\n"
      "  #  include \"sim/time.h\"\n";
  const std::vector<IncludeDirective> incs = parse_includes(source);
  ASSERT_EQ(incs.size(), 3u);
  EXPECT_EQ(incs[0].path, "net/network.h");
  EXPECT_FALSE(incs[0].angled);
  EXPECT_EQ(incs[0].line, 1);
  EXPECT_EQ(incs[1].path, "vector");
  EXPECT_TRUE(incs[1].angled);
  // Whitespace around '#' and after it is tolerated.
  EXPECT_EQ(incs[2].path, "sim/time.h");
  EXPECT_EQ(incs[2].line, 3);
}

TEST(AnalyzeIncludeTest, CommentedOutIncludesAreNotEdges) {
  const std::string source =
      "// #include \"runner/sweep.h\"\n"
      "/* #include \"scenario/world.h\" */\n"
      "#include \"sim/time.h\"  // trailing comment is fine\n";
  const std::vector<IncludeDirective> incs = parse_includes(source);
  ASSERT_EQ(incs.size(), 1u);
  EXPECT_EQ(incs[0].path, "sim/time.h");
  EXPECT_EQ(incs[0].line, 3);
}

TEST(AnalyzeIncludeTest, IncludesInsideConditionalBlocksAreRecorded) {
  // An edge that exists in any preprocessor configuration is an edge the
  // layering must permit, so #ifdef'd includes still count.
  const std::string source =
      "#ifdef SMN_EXPERIMENTAL\n"
      "#include \"net/routing.h\"\n"
      "#endif\n";
  const std::vector<IncludeDirective> incs = parse_includes(source);
  ASSERT_EQ(incs.size(), 1u);
  EXPECT_EQ(incs[0].path, "net/routing.h");
  EXPECT_EQ(incs[0].line, 2);
}

// ---------------------------------------------------------------------------
// Layer model.
// ---------------------------------------------------------------------------

TEST(AnalyzeLayerTest, NormalizesPathsToSrcRelative) {
  EXPECT_EQ(layer_of("obs/metrics.h"), layer_of("src/obs/metrics.h"));
  EXPECT_EQ(layer_of("obs/metrics.h"), layer_of("/root/repo/src/obs/metrics.h"));
  EXPECT_LT(layer_of("tools/lint_core.h"), 0);
  EXPECT_FALSE(in_layer_model("tools/lint_core.h"));
  EXPECT_TRUE(in_layer_model("runner/sweep.h"));
}

TEST(AnalyzeLayerTest, FoundationalHeadersOverrideTheirDirectory) {
  // core/check.h, core/thread_annotations.h, core/mutex.h and sim/time.h are
  // layer 0 ("base"); the rest of core/ is the control plane near the top.
  EXPECT_EQ(layer_of("core/check.h"), 0);
  EXPECT_EQ(layer_of("core/thread_annotations.h"), 0);
  EXPECT_EQ(layer_of("core/mutex.h"), 0);
  EXPECT_EQ(layer_of("sim/time.h"), 0);
  EXPECT_GT(layer_of("core/controller.h"), layer_of("net/network.h"));
  EXPECT_GT(layer_of("sim/simulator.h"), layer_of("obs/metrics.h"));
  EXPECT_STREQ(layer_name(0), "base");
  EXPECT_STREQ(layer_name(-1), "?");
}

TEST(AnalyzeLayerTest, FlagsUpwardInclude) {
  const FileMap files = {
      {"sim/simulator.h", "#pragma once\n#include \"runner/sweep.h\"\n"},
  };
  const std::vector<Finding> fs = check_layering(files);
  ASSERT_TRUE(has_rule(fs, "layering"));
  EXPECT_EQ(line_of_rule(fs, "layering"), 2);
  EXPECT_NE(fs[0].message.find("sim/simulator.h (sim)"), std::string::npos);
  EXPECT_NE(fs[0].message.find("runner/sweep.h (runner)"), std::string::npos);
}

TEST(AnalyzeLayerTest, AllowsDownwardAndSameLayerIncludes) {
  const FileMap files = {
      {"runner/sweep.h",
       "#pragma once\n#include \"sim/time.h\"\n#include \"obs/metrics.h\"\n"},
      {"net/traffic.h", "#pragma once\n#include \"net/network.h\"\n#include <vector>\n"},
  };
  EXPECT_TRUE(check_layering(files).empty());
}

TEST(AnalyzeLayerTest, FlagsFileOutsideTheLayerModel) {
  const FileMap files = {{"plugins/hook.h", "#pragma once\n"}};
  const std::vector<Finding> fs = check_layering(files);
  ASSERT_TRUE(has_rule(fs, "layering"));
  EXPECT_EQ(fs[0].line, 0);  // whole-file finding
}

// ---------------------------------------------------------------------------
// Include cycles.
// ---------------------------------------------------------------------------

TEST(AnalyzeCycleTest, DetectsCycleOnceWithCanonicalRotation) {
  // a -> b -> c -> a, all within one layer so the layer check cannot catch it.
  const FileMap files = {
      {"net/a.h", "#include \"net/b.h\"\n"},
      {"net/b.h", "#include \"net/c.h\"\n"},
      {"net/c.h", "#include \"net/a.h\"\n"},
  };
  const std::vector<Finding> fs = check_include_cycles(files);
  ASSERT_EQ(count_rule(fs, "include-cycle"), 1);
  EXPECT_NE(fs[0].message.find("net/a.h -> net/b.h -> net/c.h -> net/a.h"),
            std::string::npos);
}

TEST(AnalyzeCycleTest, TwoNodeCycleAndCleanTree) {
  const FileMap cyclic = {
      {"fault/injector.h", "#include \"fault/model.h\"\n"},
      {"fault/model.h", "#include \"fault/injector.h\"\n"},
  };
  EXPECT_EQ(count_rule(check_include_cycles(cyclic), "include-cycle"), 1);

  const FileMap clean = {
      {"sim/time.h", ""},
      {"sim/simulator.h", "#include \"sim/time.h\"\n"},
      {"net/network.h", "#include \"sim/simulator.h\"\n#include \"sim/time.h\"\n"},
  };
  EXPECT_TRUE(check_include_cycles(clean).empty());
}

TEST(AnalyzeCycleTest, SelfIncludeAndUnknownTargetsAreIgnored) {
  // A file including itself (include-guard idiom gone wrong is caught by the
  // compiler, not us) and includes of files outside the map are not edges.
  const FileMap files = {
      {"net/a.h", "#include \"net/a.h\"\n#include \"net/not_in_tree.h\"\n#include <mutex>\n"},
  };
  EXPECT_TRUE(check_include_cycles(files).empty());
}

// ---------------------------------------------------------------------------
// Shared-mutable-state audit.
// ---------------------------------------------------------------------------

TEST(AnalyzeSharedStateTest, FlagsMutableNamespaceScopeStatic) {
  const std::string source =
      "namespace smn {\n"
      "static int g_counter = 0;\n"
      "}\n";
  const std::vector<Finding> fs = check_shared_state("core/foo.cpp", source);
  ASSERT_TRUE(has_rule(fs, "shared-mutable-state"));
  EXPECT_EQ(line_of_rule(fs, "shared-mutable-state"), 2);
}

TEST(AnalyzeSharedStateTest, FlagsStaticInAnonymousNamespace) {
  const std::string source =
      "namespace {\n"
      "static std::vector<int> g_cache;\n"
      "}  // namespace\n";
  EXPECT_TRUE(has_rule(check_shared_state("net/foo.cpp", source), "shared-mutable-state"));
}

TEST(AnalyzeSharedStateTest, FlagsFunctionLocalMutableStatic) {
  const std::string source =
      "int next_id() {\n"
      "  static int id = 0;\n"
      "  return ++id;\n"
      "}\n";
  const std::vector<Finding> fs = check_shared_state("sim/foo.cpp", source);
  ASSERT_TRUE(has_rule(fs, "shared-mutable-state"));
  EXPECT_EQ(line_of_rule(fs, "shared-mutable-state"), 2);
}

TEST(AnalyzeSharedStateTest, FlagsThreadLocalAndExtern) {
  const std::string source =
      "thread_local int tls_scratch = 0;\n"
      "extern int g_shared_count;\n";
  const std::vector<Finding> fs = check_shared_state("obs/foo.h", source);
  EXPECT_EQ(count_rule(fs, "shared-mutable-state"), 2);
}

TEST(AnalyzeSharedStateTest, ConstAndConstexprStaticsAreExempt) {
  const std::string source =
      "static const int kTableSize = 64;\n"
      "static constexpr double kEpsilon = 1e-9;\n"
      "namespace smn { inline constexpr int kMax = 8; }\n"
      "static const char* const kNames[] = {\"a\", \"b\"};\n";
  EXPECT_TRUE(check_shared_state("core/foo.h", source).empty());
}

TEST(AnalyzeSharedStateTest, FunctionDeclarationsAndExternCAreExempt) {
  const std::string source =
      "static int helper(int x);\n"
      "static std::function<void(int)> make_cb();\n"
      "extern \"C\" {\n"
      "int c_api(void);\n"
      "}\n";
  EXPECT_TRUE(check_shared_state("core/foo.h", source).empty());
}

TEST(AnalyzeSharedStateTest, StaticThreadLocalComboReportsOnce) {
  const std::string source = "static thread_local int tls_id = 0;\n";
  EXPECT_EQ(count_rule(check_shared_state("sim/foo.cpp", source), "shared-mutable-state"), 1);
}

TEST(AnalyzeSharedStateTest, KeywordsInCommentsAndStringsAreIgnored) {
  const std::string source =
      "// static int not_real = 0;\n"
      "/* thread_local int also_not = 1; */\n"
      "const char* doc = \"extern int fake = 2;\";\n";
  EXPECT_TRUE(check_shared_state("core/foo.cpp", source).empty());
}

// ---------------------------------------------------------------------------
// Whole-tree driver: suppression, dedup, ordering, formatting.
// ---------------------------------------------------------------------------

TEST(AnalyzeFilesTest, SuppressionCommentDisablesRuleFileWide) {
  const FileMap files = {
      {"sim/foo.cpp",
       "// smn-analyze: allow(shared-mutable-state) — test justification\n"
       "static int g_state = 0;\n"
       "#include \"runner/sweep.h\"\n"},
  };
  const std::vector<Finding> fs = analyze_files(files);
  // Only the named rule is suppressed; the layering violation still fires.
  EXPECT_FALSE(has_rule(fs, "shared-mutable-state"));
  EXPECT_TRUE(has_rule(fs, "layering"));
}

TEST(AnalyzeFilesTest, LintSuppressionMarkerDoesNotSuppressAnalyze) {
  const FileMap files = {
      {"sim/foo.cpp", "// smn-lint: allow(shared-mutable-state)\nstatic int g_state = 0;\n"},
  };
  EXPECT_TRUE(has_rule(analyze_files(files), "shared-mutable-state"));
}

TEST(AnalyzeFilesTest, FindingsAreSortedByFileThenLine) {
  const FileMap files = {
      {"net/b.cpp", "static int g_b = 0;\n"},
      {"net/a.cpp", "int pad;\nstatic int g_a = 0;\n"},
  };
  const std::vector<Finding> fs = analyze_files(files);
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].file, "net/a.cpp");
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_EQ(fs[1].file, "net/b.cpp");
}

TEST(AnalyzeFilesTest, FormatIsMachineReadable) {
  const Finding f{"src/net/a.cpp", 7, "shared-mutable-state", "no"};
  EXPECT_EQ(format(f), "src/net/a.cpp:7: shared-mutable-state: no");
  const Finding whole{"src/net/a.h", 0, "include-cycle", "loop"};
  EXPECT_EQ(format(whole), "src/net/a.h: include-cycle: loop");
}

}  // namespace
}  // namespace smn::analyze
