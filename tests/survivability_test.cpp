// Differential and property tests for the survivability frontier engine.
//
// The core contract: the incremental reverse-replay union-find engine must be
// BIT-IDENTICAL to a verbatim brute-force oracle that re-runs BFS over the
// surviving graph after every single failure step — across every topology
// preset, both failure modes, and hundreds of seeded orderings. The oracle
// shares nothing with the engine except the published curve definitions and
// the capacity quantization helper, so any bookkeeping shortcut the engine
// takes has to reproduce the ground truth exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/survivability.h"
#include "sim/rng.h"
#include "topology/builders.h"

namespace smn {
namespace {

using analysis::FailureMode;
using analysis::FrontierResult;
using analysis::SurvivabilityCurves;
using analysis::SurvivabilityFrontier;

// -------------------------------------------------------------------------
// Brute-force oracle: full BFS recompute at every failure step.

struct OracleStep {
  std::int32_t largest = 0;        // devices in the largest alive component
  std::int32_t max_servers = 0;    // most servers in any alive component
  std::uint64_t server_cut = 0;    // crossing capacity in server components
};

/// Metrics of the alive graph: `node_alive` marks devices, `link_failed`
/// marks explicitly failed links (a link is active iff not failed and both
/// endpoints alive).
[[nodiscard]] OracleStep oracle_step(const topology::Blueprint& bp,
                                     const std::vector<std::uint8_t>& node_alive,
                                     const std::vector<std::uint8_t>& link_failed) {
  const std::vector<topology::NodeSpec>& nodes = bp.nodes();
  const std::vector<topology::LinkSpec>& links = bp.links();
  const std::vector<std::vector<std::pair<int, int>>> adjacency = bp.adjacency();
  OracleStep out;
  std::vector<std::uint8_t> visited(nodes.size(), 0);
  std::vector<int> queue;
  for (std::size_t start = 0; start < nodes.size(); ++start) {
    if (visited[start] != 0 || node_alive[start] == 0) continue;
    // BFS one component.
    std::int32_t size = 0;
    std::int32_t servers = 0;
    std::uint64_t cut = 0;
    queue.clear();
    queue.push_back(static_cast<int>(start));
    visited[start] = 1;
    while (!queue.empty()) {
      const int node = queue.back();
      queue.pop_back();
      ++size;
      if (!topology::is_switch(nodes[static_cast<std::size_t>(node)].role)) ++servers;
      for (const auto& [peer, link] : adjacency[static_cast<std::size_t>(node)]) {
        if (link_failed[static_cast<std::size_t>(link)] != 0) continue;
        if (node_alive[static_cast<std::size_t>(peer)] == 0) continue;
        const topology::LinkSpec& l = links[static_cast<std::size_t>(link)];
        // Count each active link once (from its lower endpoint) toward the
        // component's checkerboard-crossing capacity.
        if (node == std::min(l.node_a, l.node_b) && (l.node_a & 1) != (l.node_b & 1)) {
          cut += SurvivabilityFrontier::capacity_units(l.capacity_gbps);
        }
        if (visited[static_cast<std::size_t>(peer)] == 0) {
          visited[static_cast<std::size_t>(peer)] = 1;
          queue.push_back(peer);
        }
      }
    }
    out.largest = std::max(out.largest, size);
    out.max_servers = std::max(out.max_servers, servers);
    if (servers > 0) out.server_cut += cut;
  }
  return out;
}

/// The naive frontier: for every k, rebuild the alive sets from scratch and
/// BFS the whole surviving graph. O(M^2 * (V + E)) per ordering; verbatim
/// implementation of the curve definitions in analysis/survivability.h.
[[nodiscard]] SurvivabilityCurves oracle_curves(const topology::Blueprint& bp, FailureMode mode,
                                                std::span<const std::int32_t> order) {
  const std::vector<topology::NodeSpec>& nodes = bp.nodes();
  std::vector<std::int32_t> switch_nodes;
  std::size_t servers = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (topology::is_switch(nodes[i].role)) {
      switch_nodes.push_back(static_cast<std::int32_t>(i));
    } else {
      ++servers;
    }
  }
  const std::size_t m =
      mode == FailureMode::kLinks ? bp.links().size() : switch_nodes.size();
  std::vector<OracleStep> raw(m + 1);
  for (std::size_t k = 0; k <= m; ++k) {
    std::vector<std::uint8_t> node_alive(nodes.size(), 1);
    std::vector<std::uint8_t> link_failed(bp.links().size(), 0);
    for (std::size_t i = 0; i < k; ++i) {
      if (mode == FailureMode::kLinks) {
        link_failed[static_cast<std::size_t>(order[i])] = 1;
      } else {
        node_alive[static_cast<std::size_t>(
            switch_nodes[static_cast<std::size_t>(order[i])])] = 0;
      }
    }
    raw[k] = oracle_step(bp, node_alive, link_failed);
  }

  SurvivabilityCurves out;
  out.largest_component.resize(m + 1);
  out.server_reachability.resize(m + 1);
  out.bisection.resize(m + 1);
  const double device_den = static_cast<double>(nodes.size());
  const double server_den = static_cast<double>(servers);
  const std::uint64_t pristine_cut = raw[0].server_cut;
  for (std::size_t k = 0; k <= m; ++k) {
    out.largest_component[k] = static_cast<double>(raw[k].largest) / device_den;
    out.server_reachability[k] =
        servers > 0 ? static_cast<double>(raw[k].max_servers) / server_den : 1.0;
    out.bisection[k] = pristine_cut > 0 ? static_cast<double>(raw[k].server_cut) /
                                              static_cast<double>(pristine_cut)
                                        : 1.0;
  }
  return out;
}

// -------------------------------------------------------------------------
// Test fabrics: one per preset family (sized so the O(M^2) oracle stays
// fast), plus a hybrid to cover the Watts-Strogatz builder.

struct NamedFabric {
  std::string name;
  topology::Blueprint bp;
};

[[nodiscard]] std::vector<NamedFabric> test_fabrics() {
  std::vector<NamedFabric> fabrics;
  fabrics.push_back({"leaf-spine", topology::build_leaf_spine({.leaves = 4,
                                                               .spines = 2,
                                                               .servers_per_leaf = 2})});
  fabrics.push_back({"fat-tree", topology::build_fat_tree({.k = 4})});
  fabrics.push_back({"jellyfish", topology::build_jellyfish({.switches = 12,
                                                             .network_degree = 4,
                                                             .servers_per_switch = 2,
                                                             .seed = 3})});
  fabrics.push_back({"xpander", topology::build_xpander({.network_degree = 3,
                                                         .lift = 3,
                                                         .servers_per_switch = 2,
                                                         .seed = 3})});
  fabrics.push_back(
      {"gpu", topology::build_gpu_cluster({.gpu_servers = 6, .rails = 3, .spines = 2})});
  fabrics.push_back({"hybrid", topology::build_hybrid({.switches = 12,
                                                       .lattice_neighbors = 4,
                                                       .rewire_fraction = 0.3,
                                                       .servers_per_switch = 2,
                                                       .seed = 3})});
  return fabrics;
}

constexpr FailureMode kModes[] = {FailureMode::kLinks, FailureMode::kSwitches};

// -------------------------------------------------------------------------
// The differential suite: engine == oracle, bit for bit, at every point.

TEST(SurvivabilityDifferential, EngineMatchesBruteForceOracleExactly) {
  constexpr int kOrderingsPerCombo = 20;  // 6 fabrics x 2 modes x 20 = 240 orderings
  for (const NamedFabric& f : test_fabrics()) {
    SurvivabilityFrontier engine{f.bp};
    SurvivabilityCurves engine_curves;
    std::vector<std::int32_t> order;
    for (const FailureMode mode : kModes) {
      const std::size_t m = engine.element_count(mode);
      for (int i = 0; i < kOrderingsPerCombo; ++i) {
        const std::uint64_t seed =
            SurvivabilityFrontier::mix_seed(1000 + static_cast<std::uint64_t>(i), m);
        engine.make_ordering(mode, seed, order);
        engine.replay(mode, order, engine_curves);
        const SurvivabilityCurves oracle = oracle_curves(f.bp, mode, order);
        ASSERT_EQ(engine_curves.largest_component.size(), m + 1) << f.name;
        ASSERT_EQ(oracle.largest_component.size(), m + 1) << f.name;
        for (std::size_t k = 0; k <= m; ++k) {
          // Exact double equality on purpose: both sides divide the same two
          // exactly-maintained integers.
          ASSERT_EQ(engine_curves.largest_component[k], oracle.largest_component[k])
              << f.name << " " << analysis::to_string(mode) << " seed " << seed << " k=" << k;
          ASSERT_EQ(engine_curves.server_reachability[k], oracle.server_reachability[k])
              << f.name << " " << analysis::to_string(mode) << " seed " << seed << " k=" << k;
          ASSERT_EQ(engine_curves.bisection[k], oracle.bisection[k])
              << f.name << " " << analysis::to_string(mode) << " seed " << seed << " k=" << k;
        }
      }
    }
  }
}

// Adversarial orderings the random shuffle is unlikely to produce: identity,
// reversed, and even/odd interleaved.
TEST(SurvivabilityDifferential, EngineMatchesOracleOnStructuredOrderings) {
  for (const NamedFabric& f : test_fabrics()) {
    SurvivabilityFrontier engine{f.bp};
    SurvivabilityCurves engine_curves;
    for (const FailureMode mode : kModes) {
      const std::size_t m = engine.element_count(mode);
      std::vector<std::int32_t> identity(m);
      for (std::size_t i = 0; i < m; ++i) identity[i] = static_cast<std::int32_t>(i);
      std::vector<std::int32_t> reversed(identity.rbegin(), identity.rend());
      std::vector<std::int32_t> interleaved;
      for (std::size_t i = 0; i < m; i += 2) interleaved.push_back(static_cast<std::int32_t>(i));
      for (std::size_t i = 1; i < m; i += 2) interleaved.push_back(static_cast<std::int32_t>(i));
      for (const std::vector<std::int32_t>& order : {identity, reversed, interleaved}) {
        engine.replay(mode, order, engine_curves);
        const SurvivabilityCurves oracle = oracle_curves(f.bp, mode, order);
        EXPECT_EQ(engine_curves.largest_component, oracle.largest_component) << f.name;
        EXPECT_EQ(engine_curves.server_reachability, oracle.server_reachability) << f.name;
        EXPECT_EQ(engine_curves.bisection, oracle.bisection) << f.name;
      }
    }
  }
}

// -------------------------------------------------------------------------
// Property tests.

TEST(SurvivabilityProperty, CurvesAreMonotoneNonIncreasing) {
  for (const NamedFabric& f : test_fabrics()) {
    SurvivabilityFrontier engine{f.bp};
    SurvivabilityCurves curves;
    std::vector<std::int32_t> order;
    for (const FailureMode mode : kModes) {
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        engine.make_ordering(mode, seed, order);
        engine.replay(mode, order, curves);
        for (const std::vector<double>* curve :
             {&curves.largest_component, &curves.server_reachability, &curves.bisection}) {
          for (std::size_t k = 1; k < curve->size(); ++k) {
            ASSERT_LE((*curve)[k], (*curve)[k - 1])
                << f.name << " " << analysis::to_string(mode) << " seed " << seed
                << " not monotone at k=" << k;
          }
        }
        // Endpoints: pristine state is full capability by definition.
        EXPECT_EQ(curves.largest_component[0], 1.0) << f.name;
        EXPECT_EQ(curves.server_reachability[0], 1.0) << f.name;
        EXPECT_EQ(curves.bisection[0], 1.0) << f.name;
      }
    }
  }
}

TEST(SurvivabilityProperty, AggregationIsPermutationInvariantOverOrderingSeeds) {
  const topology::Blueprint bp =
      topology::build_leaf_spine({.leaves = 4, .spines = 2, .servers_per_leaf = 2});
  SurvivabilityFrontier engine{bp};
  std::vector<std::uint64_t> seeds = SurvivabilityFrontier::ordering_seeds(42, 12);
  for (const FailureMode mode : kModes) {
    const FrontierResult forward = engine.compute(mode, seeds);
    std::vector<std::uint64_t> shuffled = seeds;
    sim::RngStream rng{7};
    rng.shuffle(shuffled);
    ASSERT_NE(shuffled, seeds);  // the permutation must actually permute
    const FrontierResult permuted = engine.compute(mode, shuffled);
    EXPECT_EQ(forward.hash, permuted.hash);
    EXPECT_EQ(forward.largest_component.mean, permuted.largest_component.mean);
    EXPECT_EQ(forward.largest_component.ci95, permuted.largest_component.ci95);
    EXPECT_EQ(forward.server_reachability.mean, permuted.server_reachability.mean);
    EXPECT_EQ(forward.bisection.mean, permuted.bisection.mean);
    EXPECT_EQ(forward.auc_connectivity, permuted.auc_connectivity);
    EXPECT_EQ(forward.auc_reachability, permuted.auc_reachability);
    EXPECT_EQ(forward.auc_bisection, permuted.auc_bisection);
  }
}

TEST(SurvivabilityProperty, ComputeIsDeterministicAndSeedSensitive) {
  const topology::Blueprint bp = topology::build_fat_tree({.k = 4});
  SurvivabilityFrontier engine{bp};
  analysis::SurvivabilityConfig cfg;
  cfg.enabled = true;
  cfg.orderings = 8;
  cfg.seed = 5;
  const FrontierResult a = engine.compute(cfg);
  const FrontierResult b = engine.compute(cfg);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.largest_component.mean, b.largest_component.mean);
  cfg.seed = 6;
  const FrontierResult c = engine.compute(cfg);
  EXPECT_NE(a.hash, c.hash);  // different orderings, different mean curves
}

TEST(SurvivabilityProperty, MakeOrderingIsAPermutation) {
  const topology::Blueprint bp = topology::build_leaf_spine({.leaves = 4, .spines = 2});
  SurvivabilityFrontier engine{bp};
  std::vector<std::int32_t> order;
  for (const FailureMode mode : kModes) {
    engine.make_ordering(mode, 99, order);
    ASSERT_EQ(order.size(), engine.element_count(mode));
    std::vector<std::int32_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      ASSERT_EQ(sorted[i], static_cast<std::int32_t>(i));
    }
  }
}

TEST(SurvivabilityProperty, EmptySeedListYieldsAbsentResult) {
  const topology::Blueprint bp = topology::build_leaf_spine({.leaves = 4, .spines = 2});
  SurvivabilityFrontier engine{bp};
  const FrontierResult r = engine.compute(FailureMode::kLinks, {});
  EXPECT_FALSE(r.present());
  EXPECT_EQ(r.samples, 0u);
  EXPECT_TRUE(r.largest_component.mean.empty());
  EXPECT_EQ(r.auc_connectivity, 0.0);
}

TEST(SurvivabilityProperty, ScalarSummariesMatchCurves) {
  const topology::Blueprint bp = topology::build_fat_tree({.k = 4});
  SurvivabilityFrontier engine{bp};
  analysis::SurvivabilityConfig cfg;
  cfg.enabled = true;
  cfg.orderings = 8;
  const FrontierResult r = engine.compute(cfg);
  EXPECT_EQ(analysis::curve_value_at(r.largest_component, 0.0), r.largest_component.mean.front());
  EXPECT_EQ(analysis::curve_value_at(r.largest_component, 1.0), r.largest_component.mean.back());
  // AUC of a monotone curve from 1.0 downward lives strictly inside (0, 1].
  EXPECT_GT(r.auc_connectivity, 0.0);
  EXPECT_LE(r.auc_connectivity, 1.0);
  EXPECT_GT(r.auc_bisection, 0.0);
  EXPECT_LE(r.auc_bisection, 1.0);
}

TEST(SurvivabilityProperty, RejectsEmptyBlueprintAndExposesCounts) {
  const topology::Blueprint empty{topology::PhysicalLayout{topology::PhysicalLayout::Config{}},
                                  "empty"};
  EXPECT_THROW(SurvivabilityFrontier{empty}, std::invalid_argument);
  const topology::Blueprint bp = topology::build_leaf_spine({.leaves = 4, .spines = 2});
  SurvivabilityFrontier engine{bp};
  // element_count: every link / every switch is failable.
  EXPECT_EQ(engine.element_count(FailureMode::kLinks), bp.links().size());
  EXPECT_EQ(engine.element_count(FailureMode::kSwitches), bp.switch_count());
  EXPECT_EQ(engine.device_count(), bp.nodes().size());
  EXPECT_EQ(engine.server_count(), bp.server_count());
}

TEST(SurvivabilityProperty, HybridBuilderValidatesParamsAndRewireDial) {
  EXPECT_THROW(topology::build_hybrid({.switches = 2}), std::invalid_argument);
  EXPECT_THROW(topology::build_hybrid({.switches = 8, .lattice_neighbors = 3}),
               std::invalid_argument);
  EXPECT_THROW(topology::build_hybrid({.switches = 8, .rewire_fraction = 1.5}),
               std::invalid_argument);
  // beta = 0 is a pure ring lattice: switch-switch edge count is exactly
  // n * neighbors / 2, and the fabric is deterministic in the seed.
  const topology::HybridParams lattice{.switches = 12,
                                       .lattice_neighbors = 4,
                                       .rewire_fraction = 0.0,
                                       .servers_per_switch = 2,
                                       .seed = 9};
  const topology::Blueprint a = topology::build_hybrid(lattice);
  const topology::Blueprint b = topology::build_hybrid(lattice);
  EXPECT_EQ(a.links().size(), b.links().size());
  const std::size_t fabric_links = a.links().size() - a.server_count();
  EXPECT_EQ(fabric_links, 12u * 4u / 2u);
  // Rewiring keeps the edge count (WS rewires, never adds or removes).
  topology::HybridParams rewired = lattice;
  rewired.rewire_fraction = 0.5;
  const topology::Blueprint c = topology::build_hybrid(rewired);
  EXPECT_EQ(c.links().size(), a.links().size());
}

}  // namespace
}  // namespace smn
