// Tests for probe-based fault localization and robot-confirmed pinpointing.
#include <gtest/gtest.h>

#include "telemetry/localization.h"
#include "test_util.h"
#include "topology/builders.h"

namespace smn::telemetry {
namespace {

struct LocalizationFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 6, .spines = 3, .servers_per_leaf = 4, .uplinks_per_spine = 1});
  net::Network net{bp, testutil::short_aoc(), sim};
  sim::RngFactory rngs{61};

  net::LinkId degrade_uplink(int leaf_idx, int spine_idx, double contamination) {
    const auto leaves = net.devices_with_role(topology::NodeRole::kTorSwitch);
    const auto spines = net.devices_with_role(topology::NodeRole::kSpineSwitch);
    const net::LinkId lid = net.links_between(leaves[static_cast<size_t>(leaf_idx)],
                                              spines[static_cast<size_t>(spine_idx)])[0];
    net.link_mut(lid).end_a.condition.contamination = contamination;
    net.refresh_link(lid);
    return lid;
  }
};

TEST_F(LocalizationFixture, CleanFabricYieldsNoSuspects) {
  FaultLocalizer::Config cfg;
  cfg.false_positive = 0.0;
  FaultLocalizer loc{net, rngs.stream("probe"), cfg};
  const auto probes = loc.run_probes(400);
  for (const ProbeResult& p : probes) EXPECT_FALSE(p.lossy);
  EXPECT_TRUE(loc.localize(probes).empty());
}

TEST_F(LocalizationFixture, SingleDegradedUplinkIsTopSuspect) {
  const net::LinkId culprit = degrade_uplink(2, 1, 0.45);  // Degraded
  FaultLocalizer::Config cfg;
  cfg.false_positive = 0.0;
  FaultLocalizer loc{net, rngs.stream("probe"), cfg};
  const auto suspects = loc.localize(loc.run_probes(600));
  ASSERT_FALSE(suspects.empty());
  EXPECT_EQ(suspects[0].link, culprit);
  EXPECT_GT(suspects[0].lossy_hits, 0);
}

TEST_F(LocalizationFixture, TwoCulpritsBothRankHighly) {
  const net::LinkId a = degrade_uplink(0, 0, 0.45);
  const net::LinkId b = degrade_uplink(4, 2, 0.70);  // flapping
  FaultLocalizer::Config cfg;
  cfg.false_positive = 0.0;
  FaultLocalizer loc{net, rngs.stream("probe"), cfg};
  const auto suspects = loc.localize(loc.run_probes(800));
  ASSERT_GE(suspects.size(), 2u);
  std::set<net::LinkId> top3;
  for (std::size_t i = 0; i < std::min<std::size_t>(3, suspects.size()); ++i) {
    top3.insert(suspects[i].link);
  }
  EXPECT_TRUE(top3.contains(a));
  EXPECT_TRUE(top3.contains(b));
}

TEST_F(LocalizationFixture, ProbesHashAcrossParallelMembers) {
  // With 2 parallel uplinks and only one sick member, some probes are clean
  // and some lossy — the realistic ECMP ambiguity localization must handle.
  sim::Simulator sim2;
  const topology::Blueprint bp2 = topology::build_leaf_spine(
      {.leaves = 2, .spines = 1, .servers_per_leaf = 4, .uplinks_per_spine = 2});
  net::Network net2{bp2, testutil::short_aoc(), sim2};
  const auto leaves = net2.devices_with_role(topology::NodeRole::kTorSwitch);
  const auto spines = net2.devices_with_role(topology::NodeRole::kSpineSwitch);
  const net::LinkId sick = net2.links_between(leaves[0], spines[0])[0];
  net2.link_mut(sick).end_a.condition.contamination = 0.7;
  net2.refresh_link(sick);

  FaultLocalizer::Config cfg;
  cfg.false_positive = 0.0;
  FaultLocalizer loc{net2, rngs.stream("probe2"), cfg};
  int lossy = 0, clean = 0;
  std::vector<ProbeResult> probes;
  const auto servers = net2.servers();
  for (int i = 0; i < 200; ++i) {
    probes.push_back(loc.probe(servers[0], servers[7]));
    (probes.back().lossy ? lossy : clean)++;
  }
  EXPECT_GT(lossy, 20);
  EXPECT_GT(clean, 20);
  const auto suspects = loc.localize(probes);
  ASSERT_FALSE(suspects.empty());
  EXPECT_EQ(suspects[0].link, sick);
}

TEST_F(LocalizationFixture, InspectionsPinpointInFewVisits) {
  const net::LinkId culprit = degrade_uplink(3, 0, 0.5);
  FaultLocalizer::Config cfg;
  cfg.false_positive = 0.0;
  FaultLocalizer loc{net, rngs.stream("probe"), cfg};
  const auto suspects = loc.localize(loc.run_probes(600));
  const int visits = loc.inspections_to_pinpoint(suspects);
  ASSERT_GT(visits, 0);
  EXPECT_LE(visits, 3);
  EXPECT_EQ(suspects[static_cast<size_t>(visits - 1)].link, culprit);
}

TEST_F(LocalizationFixture, PinpointReturnsMinusOneWhenNothingIsWrong) {
  FaultLocalizer loc{net, rngs.stream("probe")};
  // Fabricate suspects on healthy links.
  std::vector<Suspicion> fake{{net::LinkId{0}, 5.0, 5, 0}, {net::LinkId{1}, 3.0, 3, 0}};
  EXPECT_EQ(loc.inspections_to_pinpoint(fake), -1);
}

TEST_F(LocalizationFixture, MoreProbesImproveTopOneAccuracy) {
  // Property: top-1 hit rate over several trials is weakly better with 600
  // probes than with 40.
  int hits_few = 0, hits_many = 0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    sim::Simulator s2;
    net::Network n2{bp, testutil::short_aoc(), s2};
    const auto leaves = n2.devices_with_role(topology::NodeRole::kTorSwitch);
    const auto spines = n2.devices_with_role(topology::NodeRole::kSpineSwitch);
    const net::LinkId culprit =
        n2.links_between(leaves[static_cast<size_t>(t % 6)], spines[static_cast<size_t>(t % 3)])[0];
    n2.link_mut(culprit).end_a.condition.contamination = 0.45;
    n2.refresh_link(culprit);
    FaultLocalizer::Config cfg;
    cfg.false_positive = 0.0;
    FaultLocalizer few{n2, rngs.stream("few" + std::to_string(t)), cfg};
    FaultLocalizer many{n2, rngs.stream("many" + std::to_string(t)), cfg};
    const auto s_few = few.localize(few.run_probes(40));
    const auto s_many = many.localize(many.run_probes(600));
    if (!s_few.empty() && s_few[0].link == culprit) ++hits_few;
    if (!s_many.empty() && s_many[0].link == culprit) ++hits_many;
  }
  EXPECT_GE(hits_many, hits_few);
  EXPECT_GE(hits_many, trials - 1);  // near-perfect with 600 probes
}

}  // namespace
}  // namespace smn::telemetry
