// Chaos suite: heavy randomized fault storms across seeds and automation
// levels, asserting the global invariants that must survive anything —
// no leaked drains, no stuck tickets, no unrepaired hardware once the storm
// stops, and bounded statistics.
#include <gtest/gtest.h>

#include "scenario/world.h"
#include "test_util.h"
#include "topology/builders.h"

namespace smn::scenario {
namespace {

using core::AutomationLevel;
using sim::Duration;

struct ChaosCase {
  std::uint64_t seed;
  AutomationLevel level;
};

class ChaosStorm : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosStorm, SurvivesAndConverges) {
  const ChaosCase param = GetParam();
  const topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 6, .spines = 3, .servers_per_leaf = 4, .uplinks_per_spine = 2});

  WorldConfig cfg = WorldConfig::for_level(param.level);
  cfg.network = testutil::short_aoc();
  cfg.network.chassis_ports_per_linecard = 4;
  cfg.seed = param.seed;
  // Storm-grade rates: an order of magnitude past the accelerated defaults.
  cfg.faults.transceiver_afr = 1.5;
  cfg.faults.cable_afr = 0.3;
  cfg.faults.switch_afr = 0.2;
  cfg.faults.server_nic_afr = 0.1;
  cfg.faults.linecard_afr = 0.3;
  cfg.faults.gray_rate_per_year = 12.0;
  cfg.faults.oxidation_rate_per_year = 3.0;
  cfg.contamination.mean_accumulation_per_day = 0.02;
  cfg.detection.false_positive_per_year = 2.0;
  World world{bp, cfg};
  world.run_for(Duration::days(45));

  // The storm produced real work.
  EXPECT_GT(world.injector().log().size(), 20u);
  EXPECT_GT(world.tickets().total(), 5u);

  // Invariants during and after the storm.
  const double avail = world.availability().fleet_availability();
  EXPECT_GE(avail, 0.0);
  EXPECT_LE(avail, 1.0);
  for (const maintenance::Ticket& t : world.tickets().all()) {
    EXPECT_LE(t.actions_taken, world.controller().config().max_attempts_per_ticket);
    if (t.state == maintenance::TicketState::kResolved) {
      EXPECT_GE(t.resolved.count_us(), t.opened.count_us());
    }
  }

  // Stop the weather and let the repair machinery drain the backlog.
  world.injector().stop();
  world.contamination().stop();
  world.run_for(Duration::days(30));

  // Every drain must have been restored (parked links would count too, but
  // no EnergyManager runs here).
  for (const net::Link& l : world.network().links()) {
    EXPECT_FALSE(l.admin_down) << "leaked drain on link " << l.id.value();
  }
  // Hard-down links should be essentially gone. Allow a small residue for
  // tickets cancelled at the attempt cap (they re-detect and eventually
  // clear; at storm rates a few may still be in flight).
  EXPECT_LE(world.network().count_links(net::LinkState::kDown), 2u);
  // No ticket left dangling in dispatched/in-progress forever: anything
  // still open must be younger than the drain window.
  for (const maintenance::Ticket& t : world.tickets().all()) {
    if (t.state == maintenance::TicketState::kOpen ||
        t.state == maintenance::TicketState::kDispatched ||
        t.state == maintenance::TicketState::kInProgress) {
      EXPECT_GT(t.opened + Duration::days(30), world.now() - Duration::days(30));
    }
  }
}

std::vector<ChaosCase> chaos_cases() {
  std::vector<ChaosCase> cases;
  const AutomationLevel levels[] = {
      AutomationLevel::kL0_Manual, AutomationLevel::kL2_PartialAutomation,
      AutomationLevel::kL3_HighAutomation, AutomationLevel::kL4_FullAutomation};
  std::uint64_t seed = 1000;
  for (const AutomationLevel level : levels) {
    for (int i = 0; i < 3; ++i) cases.push_back({seed++, level});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Storms, ChaosStorm, ::testing::ValuesIn(chaos_cases()),
                         [](const auto& pi) {
                           return "seed" + std::to_string(pi.param.seed) + "_L" +
                                  std::to_string(static_cast<int>(pi.param.level));
                         });

}  // namespace
}  // namespace smn::scenario
