// Unit tests for the fom runtime (sim/fom.h): phase ordering, wakeup
// coalescing, cancellation, kAgain chaining, and engine bookkeeping.
#include "sim/fom.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using smn::sim::Duration;
using smn::sim::Fom;
using smn::sim::FomEngine;
using smn::sim::Simulator;
using smn::sim::TimePoint;

/// A scriptable fom: each tick appends "<phase>@<hour>" to a shared log and
/// follows a per-phase script entry (what to return, when to re-arm).
class ScriptFom final : public Fom {
 public:
  struct Step {
    Tick result = Tick::kDone;
    double rearm_hours = -1.0;  // >= 0: wake_after this many hours
  };

  ScriptFom(FomEngine& engine, Simulator& sim, std::vector<Step> script,
            std::vector<std::string>& log)
      : Fom(engine), sim_(sim), script_(std::move(script)), log_(log) {}

  bool done = false;

 private:
  Tick tick() override {
    log_.push_back(std::to_string(phase()) + "@" +
                   std::to_string(static_cast<int>(sim_.now().to_hours())));
    const Step step = script_.at(static_cast<std::size_t>(phase()));
    if (step.rearm_hours >= 0.0) {
      engine().wake_after(*this, Duration::hours(step.rearm_hours));
    }
    if (step.result != Tick::kDone) set_phase(phase() + 1);
    return step.result;
  }
  void on_done() override { done = true; }

  Simulator& sim_;
  std::vector<Step> script_;
  std::vector<std::string>& log_;
};

TEST(FomTest, PhasesRunInOrderAcrossWakeups) {
  Simulator sim;
  FomEngine engine{sim};
  std::vector<std::string> log;
  // Phase 0 parks for 2h, phase 1 parks for 3h, phase 2 finishes.
  ScriptFom f{engine,
              sim,
              {{Fom::Tick::kWait, 2.0}, {Fom::Tick::kWait, 3.0}, {Fom::Tick::kDone, -1.0}},
              log};
  engine.wake_at(f, TimePoint{});  // start at t=0
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"0@0", "1@2", "2@5"}));
  EXPECT_TRUE(f.done);
  EXPECT_FALSE(f.armed());
  EXPECT_EQ(engine.wakeups_delivered(), 3u);
}

TEST(FomTest, AgainChainsPhasesOnOneWakeup) {
  Simulator sim;
  FomEngine engine{sim};
  std::vector<std::string> log;
  // Three phases, no waits: one queue entry drives the whole machine.
  ScriptFom f{engine,
              sim,
              {{Fom::Tick::kAgain, -1.0}, {Fom::Tick::kAgain, -1.0}, {Fom::Tick::kDone, -1.0}},
              log};
  engine.wake_after(f, Duration::hours(1.0));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"0@1", "1@1", "2@1"}));
  EXPECT_TRUE(f.done);
  EXPECT_EQ(engine.wakeups_delivered(), 1u);
}

TEST(FomTest, RunExecutesSynchronouslyWithoutAWakeup) {
  Simulator sim;
  FomEngine engine{sim};
  std::vector<std::string> log;
  ScriptFom f{engine, sim, {{Fom::Tick::kAgain, -1.0}, {Fom::Tick::kDone, -1.0}}, log};
  engine.run(f);
  // Both phases ran inline at t=0; nothing went through the queue.
  EXPECT_EQ(log, (std::vector<std::string>{"0@0", "1@0"}));
  EXPECT_TRUE(f.done);
  EXPECT_EQ(engine.wakeups_delivered(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(FomTest, WakeupCoalescingKeepsEarliestArming) {
  Simulator sim;
  FomEngine engine{sim};
  std::vector<std::string> log;
  ScriptFom f{engine, sim, {{Fom::Tick::kDone, -1.0}}, log};
  engine.wake_at(f, TimePoint{} + Duration::hours(4.0));
  // Re-arming later is a no-op; re-arming earlier moves the wakeup up.
  engine.wake_at(f, TimePoint{} + Duration::hours(9.0));
  EXPECT_EQ(f.armed_at(), TimePoint{} + Duration::hours(4.0));
  engine.wake_at(f, TimePoint{} + Duration::hours(1.0));
  EXPECT_EQ(f.armed_at(), TimePoint{} + Duration::hours(1.0));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"0@1"}));
  // Exactly one wakeup was delivered despite three armings.
  EXPECT_EQ(engine.wakeups_delivered(), 1u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(FomTest, CancelWakeupPreventsDelivery) {
  Simulator sim;
  FomEngine engine{sim};
  std::vector<std::string> log;
  ScriptFom f{engine, sim, {{Fom::Tick::kDone, -1.0}}, log};
  engine.wake_after(f, Duration::hours(2.0));
  EXPECT_TRUE(f.armed());
  engine.cancel_wakeup(f);
  EXPECT_FALSE(f.armed());
  engine.cancel_wakeup(f);  // idempotent on an unarmed fom
  sim.run();
  EXPECT_TRUE(log.empty());
  EXPECT_FALSE(f.done);
  EXPECT_EQ(engine.wakeups_delivered(), 0u);
}

TEST(FomTest, RearmFromInsideTickMovesTheMachineForward) {
  Simulator sim;
  FomEngine engine{sim};
  std::vector<std::string> log;
  // Phase 0 re-arms itself (kWait with a rearm): classic "poll until ready".
  ScriptFom f{engine, sim, {{Fom::Tick::kWait, 5.0}, {Fom::Tick::kDone, -1.0}}, log};
  engine.wake_at(f, TimePoint{});
  sim.step();  // deliver the t=0 wakeup; phase 0 parked and re-armed at t=5h
  EXPECT_TRUE(f.armed());
  EXPECT_EQ(f.armed_at(), TimePoint{} + Duration::hours(5.0));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"0@0", "1@5"}));
  EXPECT_TRUE(f.done);
}

TEST(FomTest, DestructorCancelsPendingWakeup) {
  Simulator sim;
  FomEngine engine{sim};
  std::vector<std::string> log;
  {
    ScriptFom f{engine, sim, {{Fom::Tick::kDone, -1.0}}, log};
    engine.wake_after(f, Duration::hours(1.0));
    EXPECT_EQ(sim.pending(), 1u);
  }
  // The queue entry was reclaimed; running delivers nothing.
  sim.run();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(engine.wakeups_delivered(), 0u);
}

TEST(FomTest, PastWakeupClampsToNow) {
  Simulator sim;
  FomEngine engine{sim};
  std::vector<std::string> log;
  ScriptFom gate{engine, sim, {{Fom::Tick::kDone, -1.0}}, log};
  // Arm from inside an event for a time already in the past: it must clamp
  // to "now" (run after the current event), not throw.
  sim.schedule_at(TimePoint{} + Duration::hours(3.0), [&] {
    engine.wake_at(gate, TimePoint{} + Duration::hours(1.0));
  });
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"0@3"}));
  EXPECT_TRUE(gate.done);
}

TEST(FomTest, CheckInvariantsPassesThroughLifecycle) {
  Simulator sim;
  FomEngine engine{sim};
  std::vector<std::string> log;
  ScriptFom f{engine, sim, {{Fom::Tick::kWait, 2.0}, {Fom::Tick::kDone, -1.0}}, log};
  engine.check_invariants(f);  // idle
  engine.wake_after(f, Duration::hours(1.0));
  engine.check_invariants(f);  // armed
  sim.run();
  engine.check_invariants(f);  // done
  sim.check_invariants();
  EXPECT_TRUE(f.done);
}

}  // namespace
