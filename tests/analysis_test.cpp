// Tests for statistics, availability tracking, the cost model, and tables.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/availability.h"
#include "analysis/cost.h"
#include "analysis/report.h"
#include "analysis/spares.h"
#include "analysis/stats.h"
#include "topology/builders.h"

namespace smn::analysis {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(SampleStats, MomentsAndPercentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.push(i);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(99), 99.0, 1.0);
  EXPECT_NEAR(s.stddev(), 29.0, 0.5);
}

TEST(SampleStats, EmptyAndSingle) {
  SampleStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  s.push(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 42.0);
  EXPECT_THROW((void)s.percentile(101), std::invalid_argument);
}

TEST(SampleStats, PushAfterPercentileStaysCorrect) {
  SampleStats s;
  s.push(1.0);
  (void)s.median();
  s.push(100.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

struct AvailabilityFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp =
      topology::build_leaf_spine({.leaves = 2, .spines = 1, .servers_per_leaf = 1});
  net::Network net{bp, net::Network::Config{}, sim};
  AvailabilityTracker tracker{net};
};

TEST_F(AvailabilityFixture, PerfectUptimeIsOne) {
  sim.run_until(TimePoint::origin() + Duration::days(10));
  EXPECT_DOUBLE_EQ(tracker.fleet_availability(), 1.0);
  EXPECT_DOUBLE_EQ(tracker.downtime_link_hours(), 0.0);
}

TEST_F(AvailabilityFixture, DowntimeIsIntegrated) {
  sim.run_until(TimePoint::origin() + Duration::hours(10));
  net.link_mut(net::LinkId{0}).cable.intact = false;
  net.refresh_link(net::LinkId{0});
  sim.run_until(TimePoint::origin() + Duration::hours(30));
  net.link_mut(net::LinkId{0}).cable.intact = true;
  net.refresh_link(net::LinkId{0});
  sim.run_until(TimePoint::origin() + Duration::hours(40));

  EXPECT_NEAR(tracker.link_availability(net::LinkId{0}), 0.5, 1e-9);
  EXPECT_NEAR(tracker.time_in(net::LinkId{0}, net::LinkState::kDown).to_hours(), 20.0,
              1e-6);
  EXPECT_NEAR(tracker.downtime_link_hours(), 20.0, 1e-6);
  EXPECT_LT(tracker.fleet_availability(), 1.0);
}

TEST_F(AvailabilityFixture, ImpairmentTracksDegradedAndFlapping) {
  net.link_mut(net::LinkId{0}).end_a.condition.contamination = 0.45;
  net.refresh_link(net::LinkId{0});
  sim.run_until(TimePoint::origin() + Duration::hours(10));
  EXPECT_NEAR(tracker.impairment_fraction(net::LinkId{0}), 1.0, 1e-9);
  EXPECT_NEAR(tracker.impaired_link_hours(), 10.0, 1e-6);
  EXPECT_DOUBLE_EQ(tracker.link_availability(net::LinkId{0}), 1.0);  // not Down
}

TEST(Nines, Conversion) {
  EXPECT_NEAR(AvailabilityTracker::nines(0.999), 3.0, 1e-9);
  EXPECT_NEAR(AvailabilityTracker::nines(0.9999), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(AvailabilityTracker::nines(1.0), 9.0);
  EXPECT_DOUBLE_EQ(AvailabilityTracker::nines(0.0), 0.0);
}

TEST(CostModel, ChannelsAddUp) {
  CostConfig cfg;
  CostInputs in;
  in.technician_hours = 100;
  in.robot_busy_hours = 50;
  in.robot_units = 2;
  in.elapsed_years = 1.0;
  in.downtime_link_hours = 200;
  in.impaired_link_hours = 100;
  in.transceivers_replaced = 3;
  in.cables_replaced = 1;
  in.overprovisioned_links = 10;
  const CostBreakdown out = compute_cost(cfg, in);
  EXPECT_DOUBLE_EQ(out.labor_usd, 100 * 85.0);
  EXPECT_DOUBLE_EQ(out.robot_usd, 2 * 120'000.0 / 5.0 + 50 * 2.0);
  EXPECT_DOUBLE_EQ(out.downtime_usd, 200 * 40.0 + 100 * 10.0);
  EXPECT_DOUBLE_EQ(out.parts_usd, 3 * 600.0 + 300.0);
  EXPECT_GT(out.overprovision_usd, 0.0);
  EXPECT_DOUBLE_EQ(out.total_usd, out.labor_usd + out.robot_usd + out.downtime_usd +
                                      out.parts_usd + out.overprovision_usd);
}

TEST(CostModel, ZeroInputsZeroCost) {
  const CostBreakdown out = compute_cost(CostConfig{}, CostInputs{});
  EXPECT_DOUBLE_EQ(out.total_usd, 0.0);
}

TEST(Report, TableAlignsAndRejectsBadRows) {
  Table t{{"name", "value"}};
  t.add_row({"alpha", Table::num(1.5)});
  t.add_row({"b", Table::num(std::size_t{42})});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Spares, StockoutProbabilityIsMonotoneAndBounded) {
  EXPECT_DOUBLE_EQ(poisson_stockout_probability(0.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(poisson_stockout_probability(5.0, -1), 1.0);
  double prev = 1.0;
  for (int stock = 0; stock <= 20; ++stock) {
    const double p = poisson_stockout_probability(5.0, stock);
    EXPECT_LE(p, prev);
    EXPECT_GE(p, 0.0);
    prev = p;
  }
  // P(X > 4 | mean 5) ~ 0.56; P(X > 10 | mean 5) ~ 0.014.
  EXPECT_NEAR(poisson_stockout_probability(5.0, 4), 0.56, 0.02);
  EXPECT_NEAR(poisson_stockout_probability(5.0, 10), 0.014, 0.005);
  EXPECT_THROW((void)poisson_stockout_probability(-1.0, 3), std::invalid_argument);
}

TEST(Spares, RecommendationMeetsTarget) {
  for (const double demand : {0.5, 2.0, 8.0, 30.0}) {
    for (const double target : {0.1, 0.01, 0.001}) {
      const int stock = recommended_spares(demand, target);
      EXPECT_LE(poisson_stockout_probability(demand, stock), target);
      if (stock > 0) {
        EXPECT_GT(poisson_stockout_probability(demand, stock - 1), target);
      }
    }
  }
  EXPECT_EQ(recommended_spares(0.0, 0.01), 0);
  EXPECT_THROW((void)recommended_spares(5.0, 0.0), std::invalid_argument);
}

TEST(Report, CsvOutput) {
  Table t{{"a", "b"}};
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace smn::analysis
