// The parallel sweep engine's contract: thread count is never
// simulation-visible (byte-identical reports at jobs=1 vs jobs=4 modulo
// timing fields), cancellation stops a sweep mid-grid without losing landed
// replicates, and degenerate grids (no cells, zero seeds) terminate cleanly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "runner/channel.h"
#include "runner/json_writer.h"
#include "runner/presets.h"
#include "runner/sweep.h"
#include "scenario/world.h"
#include "topology/builders.h"

namespace smn {
namespace {

using runner::BoundedChannel;
using runner::JsonWriter;
using runner::SweepReport;
using runner::SweepRunner;
using runner::SweepSpec;

// Serializes {"k": s} and returns the raw JSON, exercising the writer's
// string escaping end to end.
std::string json_of(std::string_view s) {
  JsonWriter w;
  w.begin_object();
  w.key("k");
  w.value(s);
  w.end_object();
  return w.str();
}

TEST(JsonWriter, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_of("say \"hi\""), "{\"k\":\"say \\\"hi\\\"\"}");
  EXPECT_EQ(json_of("C:\\path\\file"), "{\"k\":\"C:\\\\path\\\\file\"}");
  // A key needs the same treatment as a value.
  JsonWriter w;
  w.begin_object();
  w.key("a\"b");
  w.value(1);
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\\\"b\":1}");
}

TEST(JsonWriter, EscapesCommonWhitespaceControls) {
  EXPECT_EQ(json_of("a\nb"), "{\"k\":\"a\\nb\"}");
  EXPECT_EQ(json_of("a\rb"), "{\"k\":\"a\\rb\"}");
  EXPECT_EQ(json_of("a\tb"), "{\"k\":\"a\\tb\"}");
}

TEST(JsonWriter, EscapesRemainingControlCharsAsUnicode) {
  EXPECT_EQ(json_of(std::string_view{"\x00", 1}), "{\"k\":\"\\u0000\"}");
  EXPECT_EQ(json_of("\x01\x1f"), "{\"k\":\"\\u0001\\u001f\"}");
  EXPECT_EQ(json_of("bell\x07"), "{\"k\":\"bell\\u0007\"}");
}

TEST(JsonWriter, PassesNonAsciiUtf8Through) {
  // UTF-8 bytes >= 0x80 are valid JSON string content and must survive
  // verbatim — no escaping, no mangling.
  EXPECT_EQ(json_of("smn→obs µs"), "{\"k\":\"smn→obs µs\"}");
  EXPECT_EQ(json_of("héllo"), "{\"k\":\"héllo\"}");
}

TEST(JsonWriter, Hex64IsZeroPaddedLowercase) {
  EXPECT_EQ(JsonWriter::hex64(0), "0000000000000000");
  EXPECT_EQ(JsonWriter::hex64(0xDEADBEEFull), "00000000deadbeef");
  EXPECT_EQ(JsonWriter::hex64(~0ull), "ffffffffffffffff");
}

TEST(JsonWriter, NonFiniteDoublesSerializeAsNull) {
  JsonWriter w;
  w.begin_object();
  w.kv("nan", std::numeric_limits<double>::quiet_NaN());
  w.kv("inf", std::numeric_limits<double>::infinity());
  w.end_object();
  EXPECT_EQ(w.str(), "{\"nan\":null,\"inf\":null}");
}

// A grid small enough for unit-test budgets but with enough fault traffic
// that traces are genuinely seed-dependent (cf. determinism_test.cpp).
SweepSpec tiny_spec(std::uint64_t seeds, double days) {
  SweepSpec spec;
  spec.first_seed = 3;
  spec.seeds = seeds;
  spec.duration = sim::Duration::days(days);
  const topology::Blueprint bp =
      topology::build_leaf_spine({.leaves = 4, .spines = 2, .servers_per_leaf = 2});
  for (const core::AutomationLevel level :
       {core::AutomationLevel::kL0_Manual, core::AutomationLevel::kL3_HighAutomation}) {
    scenario::WorldConfig cfg = scenario::WorldConfig::for_level(level);
    cfg.faults.transceiver_afr = 4.0;
    cfg.faults.gray_rate_per_year = 100.0;
    spec.cells.push_back({core::to_string(level), bp, cfg});
  }
  return spec;
}

TEST(BoundedChannel, DeliversInOrderAndDrainsAfterClose) {
  BoundedChannel<int> ch{2};
  EXPECT_TRUE(ch.push(1));
  EXPECT_TRUE(ch.push(2));
  ch.close();
  EXPECT_FALSE(ch.push(3));  // late producer must not block or enqueue
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_EQ(ch.pop(), 2);
  EXPECT_EQ(ch.pop(), std::nullopt);
}

TEST(BoundedChannel, BlockedProducerWakesOnConsume) {
  BoundedChannel<int> ch{1};
  ASSERT_TRUE(ch.push(1));
  std::thread producer{[&] { EXPECT_TRUE(ch.push(2)); }};
  EXPECT_EQ(ch.pop(), 1);  // frees the slot the producer is waiting for
  EXPECT_EQ(ch.pop(), 2);
  producer.join();
}

TEST(SweepRunner, ThreadCountInvariance) {
  const SweepSpec spec = tiny_spec(/*seeds=*/3, /*days=*/2.0);
  SweepRunner serial;
  SweepRunner threaded;
  SweepRunner::Options serial_opts;
  serial_opts.jobs = 1;
  SweepRunner::Options threaded_opts;
  threaded_opts.jobs = 4;
  const SweepReport a = serial.run(spec, serial_opts);
  const SweepReport b = threaded.run(spec, threaded_opts);

  ASSERT_EQ(a.cells.size(), b.cells.size());
  ASSERT_EQ(a.replicates_done, 6u);
  ASSERT_EQ(b.replicates_done, 6u);
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    ASSERT_EQ(a.cells[c].replicates.size(), b.cells[c].replicates.size());
    for (std::size_t i = 0; i < a.cells[c].replicates.size(); ++i) {
      EXPECT_EQ(a.cells[c].replicates[i].seed, b.cells[c].replicates[i].seed);
      EXPECT_EQ(a.cells[c].replicates[i].trace_hash, b.cells[c].replicates[i].trace_hash)
          << "cell " << a.cells[c].name << " seed " << a.cells[c].replicates[i].seed;
      EXPECT_EQ(a.cells[c].replicates[i].events, b.cells[c].replicates[i].events);
      EXPECT_EQ(a.cells[c].replicates[i].metrics_hash, b.cells[c].replicates[i].metrics_hash);
    }
    // Per-cell obs aggregates (metrics are on by default) must also be
    // thread-count invariant.
    ASSERT_FALSE(a.cells[c].obs.empty());
    ASSERT_EQ(a.cells[c].obs.size(), b.cells[c].obs.size());
    for (std::size_t i = 0; i < a.cells[c].obs.size(); ++i) {
      EXPECT_EQ(a.cells[c].obs[i].name, b.cells[c].obs[i].name);
      EXPECT_EQ(a.cells[c].obs[i].mean, b.cells[c].obs[i].mean);
    }
  }
  // The whole report — stats accumulated in sorted order — must serialize
  // byte-identically once the timing fields (jobs, wall clock) are excluded.
  const runner::JsonOptions no_timing{.include_timing = false};
  EXPECT_EQ(runner::to_json(a, no_timing), runner::to_json(b, no_timing));
}

TEST(SweepRunner, TraceSamplingThreadCountInvariance) {
  const SweepSpec spec = tiny_spec(/*seeds=*/3, /*days=*/1.0);
  SweepRunner::Options serial_opts;
  serial_opts.jobs = 1;
  serial_opts.sample_traces = true;
  SweepRunner::Options threaded_opts;
  threaded_opts.jobs = 4;
  threaded_opts.sample_traces = true;
  SweepRunner runner;
  const SweepReport a = runner.run(spec, serial_opts);
  const SweepReport b = runner.run(spec, threaded_opts);

  // With sampling on, the report (which now embeds per-cell sampled_trace
  // hash + file name) must still be byte-identical across thread counts.
  const runner::JsonOptions no_timing{.include_timing = false};
  const std::string ja = runner::to_json(a, no_timing);
  EXPECT_EQ(ja, runner::to_json(b, no_timing));
  EXPECT_NE(ja.find("\"sampled_trace\""), std::string::npos);

  for (const runner::CellReport& cell : a.cells) {
    for (const runner::ReplicateResult& r : cell.replicates) {
      if (r.seed == spec.first_seed) {
        // Exactly the cheapest seed carries the trace, and the embedded hash
        // is the FNV-1a of exactly those bytes.
        ASSERT_FALSE(r.sampled_trace_json.empty()) << cell.name;
        EXPECT_EQ(r.sampled_trace_hash, obs::fnv1a(r.sampled_trace_json));
      } else {
        EXPECT_TRUE(r.sampled_trace_json.empty());
        EXPECT_EQ(r.sampled_trace_hash, 0u);
      }
    }
  }

  // Tracing is a pure observer: the sampled replicate's determinism signals
  // are identical to a run with sampling off.
  const SweepReport plain = runner.run(spec, SweepRunner::Options{.jobs = 1});
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    EXPECT_EQ(a.cells[c].replicates[0].trace_hash, plain.cells[c].replicates[0].trace_hash);
    EXPECT_EQ(a.cells[c].replicates[0].metrics_hash, plain.cells[c].replicates[0].metrics_hash);
  }
}

TEST(SweepRunner, SampledTraceByteMatchesSoloTracedRerun) {
  const SweepSpec spec = tiny_spec(/*seeds=*/2, /*days=*/1.0);
  SweepRunner runner;
  const SweepReport report =
      runner.run(spec, SweepRunner::Options{.jobs = 2, .sample_traces = true});

  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    const runner::ReplicateResult& r = report.cells[c].replicates.front();
    ASSERT_EQ(r.seed, spec.first_seed);
    ASSERT_FALSE(r.sampled_trace_json.empty());
    // Solo rerun, the way `smnctl run --trace` builds a traced world.
    scenario::WorldConfig cfg = spec.cells[c].config;
    cfg.seed = r.seed;
    cfg.obs.trace = true;
    scenario::World world{spec.cells[c].blueprint, std::move(cfg)};
    world.run_for(spec.duration);
    world.check_invariants();
    ASSERT_NE(world.obs().trace(), nullptr);
    const std::string solo = world.obs().trace()->to_chrome_json();
    EXPECT_EQ(solo, r.sampled_trace_json) << report.cells[c].name;
    EXPECT_EQ(obs::fnv1a(solo), r.sampled_trace_hash);
  }
}

TEST(SweepRunner, SampledTraceFilesRoundTrip) {
  const SweepSpec spec = tiny_spec(/*seeds=*/1, /*days=*/0.5);
  SweepRunner runner;
  const SweepReport report =
      runner.run(spec, SweepRunner::Options{.jobs = 1, .sample_traces = true});

  const std::string dir = ::testing::TempDir() + "/smn_sampled_traces";
  ASSERT_TRUE(runner::write_sampled_traces(report, dir));
  for (const runner::CellReport& cell : report.cells) {
    const runner::ReplicateResult& r = cell.replicates.front();
    std::ifstream in{dir + "/" + runner::sampled_trace_filename(cell.name, r.seed),
                     std::ios::binary};
    ASSERT_TRUE(in.good()) << cell.name;
    std::ostringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), r.sampled_trace_json);
  }
}

TEST(SweepRunner, SampledTraceFilenameSanitizesCellNames) {
  EXPECT_EQ(runner::sampled_trace_filename("quick/L3", 7), "trace_quick_L3_seed7.json");
  EXPECT_EQ(runner::sampled_trace_filename("a b\"c", 1), "trace_a_b_c_seed1.json");
  EXPECT_EQ(runner::sampled_trace_filename("L0-manual_x", 12), "trace_L0-manual_x_seed12.json");
}

TEST(SweepRunner, SeedsProduceDistinctTraces) {
  const SweepSpec spec = tiny_spec(/*seeds=*/2, /*days=*/4.0);
  SweepRunner sweeper;
  SweepRunner::Options opts;
  opts.jobs = 2;
  const SweepReport report = sweeper.run(spec, opts);
  for (const runner::CellReport& cell : report.cells) {
    ASSERT_EQ(cell.replicates.size(), 2u);
    EXPECT_NE(cell.replicates[0].trace_hash, cell.replicates[1].trace_hash)
        << "seed had no effect in cell " << cell.name;
  }
}

TEST(SweepRunner, CancellationStopsMidSweep) {
  const SweepSpec spec = tiny_spec(/*seeds=*/32, /*days=*/0.5);
  SweepRunner sweeper;
  std::atomic<std::size_t> seen{0};
  SweepRunner::Options opts;
  opts.jobs = 2;
  opts.on_result = [&](const runner::ReplicateResult&, std::size_t done, std::size_t) {
    seen.store(done);
    if (done >= 3) sweeper.request_stop();
  };
  const SweepReport report = sweeper.run(spec, opts);
  EXPECT_GE(report.replicates_done, 3u);
  EXPECT_LT(report.replicates_done, report.replicates_total);
  EXPECT_TRUE(report.stopped_early);
  EXPECT_EQ(report.replicates_total, 64u);
  // Landed replicates are still aggregated and serializable.
  const std::string json = runner::to_json(report);
  EXPECT_NE(json.find("\"stopped_early\":true"), std::string::npos);
}

TEST(SweepRunner, EmptyGridTerminates) {
  SweepSpec spec;  // no cells at all
  spec.seeds = 5;
  SweepRunner sweeper;
  const SweepReport report = sweeper.run(spec);
  EXPECT_EQ(report.replicates_total, 0u);
  EXPECT_EQ(report.replicates_done, 0u);
  EXPECT_FALSE(report.stopped_early);
  EXPECT_NE(runner::to_json(report).find("\"cells\":[]"), std::string::npos);
}

TEST(SweepRunner, ZeroSeedsTerminates) {
  SweepSpec spec = tiny_spec(/*seeds=*/1, /*days=*/0.5);
  spec.seeds = 0;
  SweepRunner sweeper;
  const SweepReport report = sweeper.run(spec);
  EXPECT_EQ(report.replicates_total, 0u);
  EXPECT_EQ(report.replicates_done, 0u);
  ASSERT_EQ(report.cells.size(), 2u);  // cells are still named in the report
  EXPECT_TRUE(report.cells[0].replicates.empty());
}

// tiny_spec with the survivability frontier enabled on both cells — one per
// failure mode so the sweep exercises both replay paths.
SweepSpec tiny_survivability_spec(std::uint64_t seeds, double days) {
  SweepSpec spec = tiny_spec(seeds, days);
  spec.cells[0].config.survivability.enabled = true;
  spec.cells[0].config.survivability.orderings = 6;
  spec.cells[1].config.survivability.enabled = true;
  spec.cells[1].config.survivability.orderings = 6;
  spec.cells[1].config.survivability.mode = analysis::FailureMode::kSwitches;
  return spec;
}

TEST(SweepSurvivability, JobCountInvariantReportsWithCurves) {
  // In-process version of the CI jobs-determinism gate for the survivability
  // dimension: the report — including every curve array — must be
  // byte-identical at jobs=1 and jobs=4.
  const SweepSpec spec = tiny_survivability_spec(/*seeds=*/2, /*days=*/1.0);
  SweepRunner serial;
  SweepRunner threaded;
  SweepRunner::Options serial_opts;
  serial_opts.jobs = 1;
  SweepRunner::Options threaded_opts;
  threaded_opts.jobs = 4;
  const SweepReport a = serial.run(spec, serial_opts);
  const SweepReport b = threaded.run(spec, threaded_opts);

  ASSERT_EQ(a.cells.size(), 2u);
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    ASSERT_TRUE(a.cells[c].survivability.present()) << a.cells[c].name;
    EXPECT_EQ(a.cells[c].survivability.hash, b.cells[c].survivability.hash);
    EXPECT_EQ(a.cells[c].survivability.largest_component.mean,
              b.cells[c].survivability.largest_component.mean);
    for (std::size_t i = 0; i < a.cells[c].replicates.size(); ++i) {
      ASSERT_TRUE(a.cells[c].replicates[i].survivability.present());
      EXPECT_EQ(a.cells[c].replicates[i].survivability.hash,
                b.cells[c].replicates[i].survivability.hash);
      EXPECT_GT(a.cells[c].replicates[i].metrics[runner::kSurvivabilityAucConnectivity], 0.0);
    }
  }
  EXPECT_EQ(a.cells[1].survivability.mode, analysis::FailureMode::kSwitches);

  const runner::JsonOptions no_timing{.include_timing = false};
  const std::string json = runner::to_json(a, no_timing);
  EXPECT_EQ(json, runner::to_json(b, no_timing));
  EXPECT_NE(json.find("\"survivability\""), std::string::npos);
  EXPECT_NE(json.find("\"survivability_hash\""), std::string::npos);
  EXPECT_NE(json.find("\"largest_component\""), std::string::npos);
}

TEST(SweepSurvivability, DisabledCellsCarryNoCurveBlock) {
  const SweepSpec spec = tiny_spec(/*seeds=*/1, /*days=*/0.5);
  SweepRunner sweeper;
  const SweepReport report = sweeper.run(spec);
  for (const runner::CellReport& cell : report.cells) {
    EXPECT_FALSE(cell.survivability.present()) << cell.name;
  }
  const std::string json = runner::to_json(report);
  EXPECT_EQ(json.find("\"survivability\""), std::string::npos);
  EXPECT_EQ(json.find("\"survivability_hash\""), std::string::npos);
}

TEST(SweepSurvivability, CellCurvesAreMonotoneAndMatchAucMetric) {
  const SweepSpec spec = tiny_survivability_spec(/*seeds=*/2, /*days=*/0.5);
  SweepRunner sweeper;
  const SweepReport report = sweeper.run(spec);
  for (const runner::CellReport& cell : report.cells) {
    const analysis::FrontierResult& s = cell.survivability;
    ASSERT_TRUE(s.present());
    ASSERT_EQ(s.largest_component.mean.size(), s.elements + 1);
    for (const auto* curve :
         {&s.largest_component.mean, &s.server_reachability.mean, &s.bisection.mean}) {
      for (std::size_t k = 1; k < curve->size(); ++k) {
        ASSERT_LE((*curve)[k], (*curve)[k - 1]) << cell.name << " k=" << k;
      }
    }
    // The per-cell AUC metric aggregate is the mean of per-replicate AUCs,
    // each strictly inside (0, 1] for a connected fabric.
    EXPECT_GT(s.auc_connectivity, 0.0);
    EXPECT_LE(s.auc_connectivity, 1.0);
  }
}

TEST(SweepPresets, KnownNamesBuildAndUnknownThrows) {
  for (const std::string& name : runner::sweep_preset_names()) {
    const SweepSpec spec = runner::make_sweep(name, sim::Duration::days(1), 1, 2);
    EXPECT_FALSE(spec.cells.empty()) << name;
  }
  EXPECT_THROW(runner::make_sweep("nope", sim::Duration::days(1), 1, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace smn
