// Tests for fault-trace recording, CSV round-trip, and replay fidelity.
#include <gtest/gtest.h>

#include <sstream>

#include "fault/trace.h"
#include "scenario/world.h"
#include "test_util.h"
#include "topology/builders.h"

namespace smn::fault {
namespace {

using sim::Duration;
using sim::TimePoint;

struct TraceFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 2, .uplinks_per_spine = 2});
  net::Network net{bp, testutil::short_aoc(), sim};
  Environment env;
  sim::RngFactory rngs{81};
  FaultInjector injector{net, env, rngs.stream("inj")};
};

TEST_F(TraceFixture, RecordsEmittedEvents) {
  FaultTrace trace;
  trace.attach(injector);
  injector.inject_cable_break(net::LinkId{0});
  sim.run_until(TimePoint::origin() + Duration::hours(1));
  injector.inject_gray_episode(net::LinkId{1}, Duration::minutes(30));
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.events[0].kind, FaultKind::kCableBreak);
  EXPECT_EQ(trace.events[1].kind, FaultKind::kGrayEpisode);
  EXPECT_EQ(trace.events[1].gray_duration, Duration::minutes(30));
  EXPECT_DOUBLE_EQ(trace.events[1].time.to_hours(), 1.0);
}

TEST_F(TraceFixture, CsvRoundTrip) {
  FaultTrace trace;
  trace.attach(injector);
  injector.inject_transceiver_failure(net::LinkId{2}, 1);
  injector.inject_gray_episode(net::LinkId{3}, Duration::seconds(90));
  injector.inject_device_failure(net.devices_with_role(topology::NodeRole::kSpineSwitch)[0]);

  std::stringstream ss;
  trace.save(ss);
  const FaultTrace loaded = FaultTrace::load(ss);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded.events[i].time, trace.events[i].time);
    EXPECT_EQ(loaded.events[i].kind, trace.events[i].kind);
    EXPECT_EQ(loaded.events[i].link, trace.events[i].link);
    EXPECT_EQ(loaded.events[i].device, trace.events[i].device);
    EXPECT_EQ(loaded.events[i].end, trace.events[i].end);
    EXPECT_EQ(loaded.events[i].gray_duration, trace.events[i].gray_duration);
  }
}

TEST_F(TraceFixture, LoadOfEmptyStreamIsEmpty) {
  std::stringstream ss;
  EXPECT_EQ(FaultTrace::load(ss).size(), 0u);
}

TEST_F(TraceFixture, ReplaySchedulesAtRecordedTimes) {
  FaultTrace trace;
  FaultEvent e1;
  e1.time = TimePoint::origin() + Duration::hours(2);
  e1.kind = FaultKind::kCableBreak;
  e1.link = net::LinkId{5};
  trace.events.push_back(e1);
  FaultEvent e2;
  e2.time = TimePoint::origin() + Duration::hours(4);
  e2.kind = FaultKind::kGrayEpisode;
  e2.link = net::LinkId{6};
  e2.gray_duration = Duration::minutes(10);
  trace.events.push_back(e2);

  TraceReplayer replayer{net, injector};
  EXPECT_EQ(replayer.schedule(trace), 2u);

  sim.run_until(TimePoint::origin() + Duration::hours(1));
  EXPECT_TRUE(net.link(net::LinkId{5}).cable.intact);
  sim.run_until(TimePoint::origin() + Duration::hours(3));
  EXPECT_FALSE(net.link(net::LinkId{5}).cable.intact);
  sim.run_until(TimePoint::origin() + Duration::hours(4) + Duration::minutes(1));
  EXPECT_EQ(net.link(net::LinkId{6}).state, net::LinkState::kFlapping);
}

TEST_F(TraceFixture, ReplaySkipsPastEvents) {
  sim.run_until(TimePoint::origin() + Duration::hours(10));
  FaultTrace trace;
  FaultEvent past;
  past.time = TimePoint::origin() + Duration::hours(1);
  past.kind = FaultKind::kCableBreak;
  past.link = net::LinkId{0};
  trace.events.push_back(past);
  TraceReplayer replayer{net, injector};
  EXPECT_EQ(replayer.schedule(trace), 0u);
}

TEST(TraceDifferential, RecordFromPassiveWorldReplayIntoRepairedWorld) {
  // Record a passive world's fault sequence, then replay it into an L3
  // world: the repaired world must see exactly the recorded workload.
  const topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 2, .uplinks_per_spine = 2});

  scenario::WorldConfig passive_cfg =
      scenario::WorldConfig::for_level(core::AutomationLevel::kL0_Manual);
  passive_cfg.network = testutil::short_aoc();
  passive_cfg.seed = 5;
  passive_cfg.technicians.technicians = 0;  // nobody repairs anything
  scenario::World passive{bp, passive_cfg};
  FaultTrace trace;
  trace.attach(passive.injector());
  passive.run_for(sim::Duration::days(60));
  ASSERT_GT(trace.size(), 3u);

  scenario::WorldConfig live_cfg =
      scenario::WorldConfig::for_level(core::AutomationLevel::kL3_HighAutomation);
  live_cfg.network = testutil::short_aoc();
  live_cfg.seed = 999;  // different seed: the trace is the workload, not the rng
  // Exogenous-workload mode: the stochastic injector stays quiet.
  live_cfg.faults.transceiver_afr = 0;
  live_cfg.faults.cable_afr = 0;
  live_cfg.faults.switch_afr = 0;
  live_cfg.faults.server_nic_afr = 0;
  live_cfg.faults.gray_rate_per_year = 0;
  live_cfg.contamination.mean_accumulation_per_day = 0;
  live_cfg.detection.false_positive_per_year = 0;
  scenario::World live{bp, live_cfg};
  live.start();
  TraceReplayer replayer{live.network(), live.injector()};
  EXPECT_EQ(replayer.schedule(trace), trace.size());
  live.run_for(sim::Duration::days(75));

  // Every replayed fault shows in the live injector's log, and hard faults
  // got repaired.
  EXPECT_EQ(live.injector().log().size(), trace.size());
  EXPECT_EQ(live.network().count_links(net::LinkState::kDown), 0u);
  EXPECT_GT(live.tickets().count(maintenance::TicketState::kResolved), 0u);
}

}  // namespace
}  // namespace smn::fault
