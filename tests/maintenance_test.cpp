// Tests for tickets, repair-action semantics, and the technician pool.
#include <gtest/gtest.h>

#include "fault/cascade.h"
#include "fault/contamination.h"
#include "fault/environment.h"
#include "fault/injector.h"
#include "maintenance/actions.h"
#include "maintenance/technician.h"
#include "maintenance/ticket.h"
#include "test_util.h"
#include "topology/builders.h"

namespace smn::maintenance {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(TicketSystem, LifecycleAndDedup) {
  TicketSystem ts;
  const TimePoint t0 = TimePoint::origin();
  const auto id = ts.open(t0, net::LinkId{3}, telemetry::IssueKind::kDown, true);
  ASSERT_TRUE(id.has_value());
  EXPECT_FALSE(ts.open(t0, net::LinkId{3}, telemetry::IssueKind::kDown, true).has_value());
  EXPECT_EQ(ts.open_ticket_for(net::LinkId{3}), id);

  ts.mark_dispatched(*id, t0 + Duration::hours(1));
  ts.mark_started(*id, t0 + Duration::hours(2));
  ts.mark_resolved(*id, t0 + Duration::hours(3), "technician");
  EXPECT_EQ(ts.ticket(*id).state, TicketState::kResolved);
  EXPECT_EQ(ts.ticket(*id).resolved_by, "technician");
  EXPECT_FALSE(ts.open_ticket_for(net::LinkId{3}).has_value());

  // A new ticket can now be opened for the same link.
  EXPECT_TRUE(ts.open(t0 + Duration::hours(4), net::LinkId{3},
                      telemetry::IssueKind::kFlapping, true)
                  .has_value());
}

TEST(TicketSystem, InvalidTransitionsThrow) {
  TicketSystem ts;
  const auto id = ts.open(TimePoint::origin(), net::LinkId{0},
                          telemetry::IssueKind::kDown, true);
  EXPECT_THROW(ts.mark_started(*id, TimePoint::origin()), std::logic_error);
  ts.mark_dispatched(*id, TimePoint::origin());
  EXPECT_THROW(ts.mark_dispatched(*id, TimePoint::origin()), std::logic_error);
  ts.mark_resolved(*id, TimePoint::origin(), "x");
  EXPECT_THROW(ts.mark_resolved(*id, TimePoint::origin(), "x"), std::logic_error);
}

TEST(TicketSystem, CancelledTicketsStayCancelled) {
  TicketSystem ts;
  const auto id = ts.open(TimePoint::origin(), net::LinkId{0},
                          telemetry::IssueKind::kFlapping, true);
  ts.mark_cancelled(*id, TimePoint::origin(), "false positive");
  EXPECT_EQ(ts.ticket(*id).state, TicketState::kCancelled);
  ts.mark_cancelled(*id, TimePoint::origin(), "again");  // idempotent
  EXPECT_EQ(ts.count(TicketState::kCancelled), 1u);
}

TEST(TicketSystem, RepeatWindowDetection) {
  TicketSystem ts;
  const TimePoint t0 = TimePoint::origin();
  const auto a = ts.open(t0, net::LinkId{7}, telemetry::IssueKind::kFlapping, true);
  ts.mark_dispatched(*a, t0);
  ts.mark_started(*a, t0);
  ts.mark_resolved(*a, t0 + Duration::hours(2), "technician");

  EXPECT_TRUE(ts.repeat_within(net::LinkId{7}, t0 + Duration::days(3), Duration::days(14)));
  EXPECT_FALSE(ts.repeat_within(net::LinkId{7}, t0 + Duration::days(30), Duration::days(14)));
  EXPECT_FALSE(ts.repeat_within(net::LinkId{8}, t0 + Duration::days(3), Duration::days(14)));

  const auto b =
      ts.open(t0 + Duration::days(3), net::LinkId{7}, telemetry::IssueKind::kFlapping, true);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(ts.repeat_ticket_count(Duration::days(14)), 1u);
  EXPECT_EQ(ts.history_for(net::LinkId{7}).size(), 1u);
}

TEST(TicketSystem, ResolvedListenerFires) {
  TicketSystem ts;
  int resolved = 0;
  ts.subscribe_resolved([&](const Ticket&) { ++resolved; });
  const auto id =
      ts.open(TimePoint::origin(), net::LinkId{0}, telemetry::IssueKind::kDown, true);
  ts.mark_dispatched(*id, TimePoint::origin());
  ts.mark_resolved(*id, TimePoint::origin() + Duration::hours(1), "robot");
  EXPECT_EQ(resolved, 1);
}

// --- action semantics ---

struct ActionFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 2, .uplinks_per_spine = 2});
  net::Network net{bp, testutil::short_aoc(), sim};
  fault::Environment env;
  sim::RngFactory rngs{21};
  sim::RngStream rng = rngs.stream("actions");
  fault::ContaminationProcess contamination{net, env, rngs.stream("cont")};
  WorkQuality perfect{.clean_effectiveness = 1.0,
                      .clean_verify_pass = 1.0,
                      .botch_probability = 0.0};

  net::LinkId optical_link() const {
    for (const net::Link& l : net.links()) {
      if (net::is_cleanable(l.medium)) return l.id;
    }
    throw std::logic_error{"no optical link"};
  }
};

TEST_F(ActionFixture, ReseatFixesUnseatedAndClearsOxidation) {
  const net::LinkId lid{0};
  net::Link& l = net.link_mut(lid);
  l.end_a.condition.transceiver_seated = false;
  l.end_a.condition.oxidation = 0.8;
  net.refresh_link(lid);
  ASSERT_EQ(l.state, net::LinkState::kDown);

  const ActionResult r =
      apply_action(net, &contamination, rng, lid, 0, RepairActionKind::kReseat, perfect);
  EXPECT_TRUE(r.performed);
  EXPECT_FALSE(r.botched);
  EXPECT_TRUE(l.end_a.condition.transceiver_seated);
  EXPECT_DOUBLE_EQ(l.end_a.condition.oxidation, 0.0);
  EXPECT_EQ(l.end_a.condition.reseat_count, 1);
  EXPECT_EQ(l.state, net::LinkState::kUp);
}

TEST_F(ActionFixture, ReseatEndsGrayEpisode) {
  const net::LinkId lid{0};
  net::Link& l = net.link_mut(lid);
  l.gray_until = sim.now() + Duration::hours(5);
  net.refresh_link(lid);
  ASSERT_EQ(l.state, net::LinkState::kFlapping);
  (void)apply_action(net, &contamination, rng, lid, 0, RepairActionKind::kReseat, perfect);
  EXPECT_EQ(l.state, net::LinkState::kUp);
}

TEST_F(ActionFixture, ReseatDoesNotClean) {
  const net::LinkId lid = optical_link();
  net::Link& l = net.link_mut(lid);
  l.end_a.condition.contamination = 0.7;
  net.refresh_link(lid);
  ASSERT_EQ(l.state, net::LinkState::kFlapping);
  WorkQuality no_exposure = perfect;
  const ActionResult r =
      apply_action(net, nullptr, rng, lid, 0, RepairActionKind::kReseat, no_exposure);
  EXPECT_TRUE(r.performed);
  EXPECT_DOUBLE_EQ(l.end_a.condition.contamination, 0.7);
  EXPECT_EQ(l.state, net::LinkState::kFlapping);  // §3.2: reseat won't fix dirt
}

TEST_F(ActionFixture, CleanRemovesContamination) {
  const net::LinkId lid = optical_link();
  net::Link& l = net.link_mut(lid);
  l.end_b.condition.contamination = 0.7;
  net.refresh_link(lid);
  const ActionResult r =
      apply_action(net, &contamination, rng, lid, 1, RepairActionKind::kClean, perfect);
  EXPECT_TRUE(r.performed);
  EXPECT_DOUBLE_EQ(l.end_b.condition.contamination, 0.0);
  EXPECT_EQ(l.end_b.condition.clean_count, 1);
  EXPECT_EQ(l.state, net::LinkState::kUp);
}

TEST_F(ActionFixture, CleanOnIntegratedCableIsNotPerformed) {
  net::LinkId dac;
  for (const net::Link& l : net.links()) {
    if (l.medium == net::CableMedium::kDac) {
      dac = l.id;
      break;
    }
  }
  const ActionResult r =
      apply_action(net, &contamination, rng, dac, 0, RepairActionKind::kClean, perfect);
  EXPECT_FALSE(r.performed);
}

TEST_F(ActionFixture, InspectMeasuresWorstEnd) {
  const net::LinkId lid = optical_link();
  net.link_mut(lid).end_a.condition.contamination = 0.5;
  const ActionResult r =
      apply_action(net, &contamination, rng, lid, 0, RepairActionKind::kInspect, perfect);
  EXPECT_TRUE(r.performed);
  EXPECT_NEAR(r.measured_contamination, 0.5, 0.15);
}

TEST_F(ActionFixture, ReplaceTransceiverResetsEverything) {
  const net::LinkId lid{1};
  net::Link& l = net.link_mut(lid);
  l.end_a.condition.transceiver_healthy = false;
  l.end_a.condition.contamination = 0.9;
  l.end_a.condition.reseat_count = 5;
  net.refresh_link(lid);
  ASSERT_EQ(l.state, net::LinkState::kDown);
  const ActionResult r = apply_action(net, &contamination, rng, lid, 0,
                                      RepairActionKind::kReplaceTransceiver, perfect);
  EXPECT_TRUE(r.performed);
  EXPECT_TRUE(l.end_a.condition.transceiver_healthy);
  EXPECT_DOUBLE_EQ(l.end_a.condition.contamination, 0.0);
  EXPECT_EQ(l.end_a.condition.reseat_count, 0);
  EXPECT_EQ(l.state, net::LinkState::kUp);
}

TEST_F(ActionFixture, ReplaceCableRestoresAndCleans) {
  const net::LinkId lid{2};
  net::Link& l = net.link_mut(lid);
  l.cable.intact = false;
  l.cable.wear = 0.5;
  l.end_a.condition.contamination = 0.4;
  net.refresh_link(lid);
  const ActionResult r = apply_action(net, &contamination, rng, lid, 0,
                                      RepairActionKind::kReplaceCable, perfect);
  EXPECT_TRUE(r.performed);
  EXPECT_TRUE(l.cable.intact);
  EXPECT_DOUBLE_EQ(l.cable.wear, 0.0);
  EXPECT_DOUBLE_EQ(l.end_a.condition.contamination, 0.0);
  EXPECT_EQ(l.state, net::LinkState::kUp);
}

TEST_F(ActionFixture, ReplaceDeviceHealsDeadEndpoint) {
  const net::LinkId lid{0};
  const net::DeviceId dev = net.link(lid).end_b.device;
  net.set_device_health(dev, false);
  ASSERT_EQ(net.link(lid).state, net::LinkState::kDown);
  const ActionResult r = apply_action(net, &contamination, rng, lid, 0,
                                      RepairActionKind::kReplaceDevice, perfect);
  EXPECT_TRUE(r.performed);
  EXPECT_TRUE(net.device(dev).healthy);
  EXPECT_EQ(net.link(lid).state, net::LinkState::kUp);
}

TEST_F(ActionFixture, BotchedReseatLeavesLinkDark) {
  WorkQuality clumsy = perfect;
  clumsy.botch_probability = 1.0;
  const net::LinkId lid{0};
  const ActionResult r =
      apply_action(net, &contamination, rng, lid, 0, RepairActionKind::kReseat, clumsy);
  EXPECT_TRUE(r.performed);
  EXPECT_TRUE(r.botched);
  EXPECT_EQ(net.link(lid).state, net::LinkState::kDown);
}

// --- technician pool ---

struct TechFixture : ActionFixture {
  fault::FaultInjector injector{net, env, rngs.stream("inj")};
  fault::CascadeModel cascade{net, env, injector, rngs.stream("casc")};

  TechnicianPool::Config pool_config(int technicians) {
    TechnicianPool::Config cfg;
    cfg.technicians = technicians;
    cfg.quality.botch_probability = 0.0;
    return cfg;
  }
};

TEST_F(TechFixture, JobCompletesOnHoursTimescale) {
  TechnicianPool pool{net, cascade, &contamination, rngs.stream("tech"), pool_config(2)};
  net.link_mut(net::LinkId{0}).end_a.condition.transceiver_seated = false;
  net.refresh_link(net::LinkId{0});

  std::optional<JobReport> report;
  pool.submit(Job{0, net::LinkId{0}, 0, RepairActionKind::kReseat, false},
              [&](const JobReport& r) { report = r; });
  sim.run_until(TimePoint::origin() + Duration::days(21));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->performed);
  EXPECT_EQ(report->performer, "technician");
  const double hours = (report->finished - report->enqueued).to_hours();
  EXPECT_GT(hours, 1.0);    // dispatch latency dominates
  EXPECT_LT(hours, 21.0 * 24.0);
  EXPECT_EQ(net.link(net::LinkId{0}).state, net::LinkState::kUp);
  EXPECT_EQ(pool.completed(), 1u);
  EXPECT_EQ(pool.completed_of(RepairActionKind::kReseat), 1u);
  EXPECT_GT(pool.labor_hours(), 0.0);
}

TEST_F(TechFixture, HighPriorityJumpsTheQueue) {
  TechnicianPool pool{net, cascade, &contamination, rngs.stream("tech"), pool_config(1)};
  std::vector<int> completion_order;
  // Saturate the single tech, then submit one high-priority job last.
  for (int i = 0; i < 4; ++i) {
    pool.submit(Job{i, net::LinkId{i}, 0, RepairActionKind::kInspect, false},
                [&, i](const JobReport&) { completion_order.push_back(i); });
  }
  pool.submit(Job{9, net::LinkId{5}, 0, RepairActionKind::kInspect, true},
              [&](const JobReport&) { completion_order.push_back(9); });
  sim.run_until(TimePoint::origin() + Duration::days(60));
  ASSERT_EQ(completion_order.size(), 5u);
  // The priority job beats at least the queued normal ones (first job may
  // already be in flight).
  const auto it = std::find(completion_order.begin(), completion_order.end(), 9);
  EXPECT_LE(it - completion_order.begin(), 1);
}

TEST_F(TechFixture, PoolParallelismBoundsThroughput) {
  TechnicianPool one{net, cascade, &contamination, rngs.stream("one"), pool_config(1)};
  TechnicianPool four{net, cascade, &contamination, rngs.stream("four"), pool_config(4)};
  int done_one = 0, done_four = 0;
  for (int i = 0; i < 8; ++i) {
    one.submit(Job{i, net::LinkId{i}, 0, RepairActionKind::kInspect, false},
               [&](const JobReport&) { ++done_one; });
    four.submit(Job{i, net::LinkId{i}, 0, RepairActionKind::kInspect, false},
                [&](const JobReport&) { ++done_four; });
  }
  sim.run_until(TimePoint::origin() + Duration::days(3));
  EXPECT_GE(done_four, done_one);
}

TEST_F(TechFixture, CableReplacementDisturbsTrayMates) {
  TechnicianPool pool{net, cascade, &contamination, rngs.stream("tech"), pool_config(1)};
  // Break an uplink cable; replacing it touches the tray route.
  const net::DeviceId leaf = net.devices_with_role(topology::NodeRole::kTorSwitch)[0];
  const net::DeviceId spine = net.devices_with_role(topology::NodeRole::kSpineSwitch)[0];
  const net::LinkId lid = net.links_between(leaf, spine)[0];
  net.link_mut(lid).cable.intact = false;
  net.refresh_link(lid);
  std::optional<JobReport> report;
  pool.submit(Job{0, lid, 0, RepairActionKind::kReplaceCable, true},
              [&](const JobReport& r) { report = r; });
  sim.run_until(TimePoint::origin() + Duration::days(10));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->performed);
  EXPECT_EQ(net.link(lid).state, net::LinkState::kUp);
}

}  // namespace
}  // namespace smn::maintenance
