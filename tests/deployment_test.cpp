// Tests for the deployment-effort model (§4: robots deploying the network).
#include <gtest/gtest.h>

#include "topology/builders.h"
#include "topology/deployment.h"

namespace smn::topology {
namespace {

TEST(Deployment, EstimateIsPositiveAndSums) {
  const Blueprint bp = build_leaf_spine({.leaves = 8, .spines = 4, .servers_per_leaf = 4});
  const DeploymentEstimate est = estimate_deployment(bp, CrewParams::human_crew(4));
  EXPECT_GT(est.pull_hours, 0.0);
  EXPECT_GT(est.terminate_hours, 0.0);
  EXPECT_GE(est.expected_miswires, 0.0);
  EXPECT_NEAR(est.total_work_hours, est.pull_hours + est.terminate_hours + est.rework_hours,
              1e-9);
  EXPECT_GT(est.calendar_days, 0.0);
  EXPECT_GT(est.labor_cost_usd, 0.0);
}

TEST(Deployment, MoreWorkersShrinkCalendarNotWork) {
  const Blueprint bp = build_fat_tree({.k = 8});
  const DeploymentEstimate small = estimate_deployment(bp, CrewParams::human_crew(2));
  const DeploymentEstimate large = estimate_deployment(bp, CrewParams::human_crew(8));
  EXPECT_NEAR(small.total_work_hours, large.total_work_hours, 1e-9);
  EXPECT_GT(small.calendar_days, large.calendar_days);
}

TEST(Deployment, LoomsAmortizePulling) {
  // Two leaf-spine fabrics with identical cable count, one forced to unique
  // rack pairs (jellyfish): the bundled fabric pulls cheaper per cable.
  const Blueprint ls = build_leaf_spine({.leaves = 32, .spines = 8, .servers_per_leaf = 0});
  const Blueprint jf = build_jellyfish(
      {.switches = 32, .network_degree = 8, .servers_per_switch = 0, .seed = 9});
  const DeploymentEstimate e_ls = estimate_deployment(ls, CrewParams::human_crew(4));
  const DeploymentEstimate e_jf = estimate_deployment(jf, CrewParams::human_crew(4));
  const double per_cable_ls = e_ls.pull_hours / static_cast<double>(ls.links().size());
  const double per_cable_jf = e_jf.pull_hours / static_cast<double>(jf.links().size());
  EXPECT_LT(per_cable_ls, per_cable_jf * 1.05);  // bundling >= parity
}

TEST(Deployment, HumanMiswiresGrowWithIrregularity) {
  const Blueprint ls = build_leaf_spine({.leaves = 32, .spines = 8, .servers_per_leaf = 2});
  const Blueprint jf = build_jellyfish(
      {.switches = 32, .network_degree = 8, .servers_per_switch = 2, .seed = 9});
  const CrewParams crew = CrewParams::human_crew(4);
  const double ls_rate = estimate_deployment(ls, crew).expected_miswires /
                         static_cast<double>(ls.links().size());
  const double jf_rate = estimate_deployment(jf, crew).expected_miswires /
                         static_cast<double>(jf.links().size());
  EXPECT_GT(jf_rate, ls_rate);
}

TEST(Deployment, RobotsFlattenTheIrregularityPenalty) {
  // The §4 claim: robot deployment makes expander wiring viable. Robot
  // per-cable mis-wiring must not depend on topology regularity.
  const Blueprint ls = build_leaf_spine({.leaves = 32, .spines = 8, .servers_per_leaf = 2});
  const Blueprint jf = build_jellyfish(
      {.switches = 32, .network_degree = 8, .servers_per_switch = 2, .seed = 9});
  const CrewParams fleet = CrewParams::robot_fleet(4);
  const double ls_rate = estimate_deployment(ls, fleet).expected_miswires /
                         static_cast<double>(ls.links().size());
  const double jf_rate = estimate_deployment(jf, fleet).expected_miswires /
                         static_cast<double>(jf.links().size());
  EXPECT_NEAR(ls_rate, jf_rate, 1e-12);

  // And the human-vs-robot rework gap is largest on the irregular fabric.
  const CrewParams crew = CrewParams::human_crew(4);
  const double human_gap = estimate_deployment(jf, crew).rework_hours -
                           estimate_deployment(ls, crew).rework_hours;
  const double robot_gap = estimate_deployment(jf, fleet).rework_hours -
                           estimate_deployment(ls, fleet).rework_hours;
  EXPECT_GT(human_gap, robot_gap);
}

TEST(Deployment, RobotLaborIsCheaperDespiteSlowerPulling) {
  const Blueprint bp = build_fat_tree({.k = 8});
  const DeploymentEstimate human = estimate_deployment(bp, CrewParams::human_crew(4));
  const DeploymentEstimate robot = estimate_deployment(bp, CrewParams::robot_fleet(4));
  EXPECT_LT(robot.labor_cost_usd, human.labor_cost_usd);
}

}  // namespace
}  // namespace smn::topology
