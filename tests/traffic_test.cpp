// Tests for the flow-level traffic engine: matrix generators, ECMP routing,
// load accounting, capacity clipping, and tail-latency estimation.
#include <gtest/gtest.h>

#include <numeric>

#include "net/traffic.h"
#include "test_util.h"
#include "topology/builders.h"

namespace smn::net {
namespace {

struct TrafficFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 4, .uplinks_per_spine = 1});
  Network net{bp, testutil::short_aoc(), sim};
  sim::RngFactory rngs{41};
  sim::RngStream rng = rngs.stream("traffic");
};

TEST_F(TrafficFixture, UniformMatrixHasRequestedShape) {
  const TrafficMatrix tm = TrafficMatrix::uniform(net, 100, 2.5, rng);
  EXPECT_EQ(tm.flows.size(), 100u);
  EXPECT_DOUBLE_EQ(tm.total_demand_gbps(), 250.0);
  for (const Flow& f : tm.flows) {
    EXPECT_NE(f.src, f.dst);
    EXPECT_FALSE(topology::is_switch(net.device(f.src).role));
    EXPECT_FALSE(topology::is_switch(net.device(f.dst).role));
  }
}

TEST_F(TrafficFixture, SkewedMatrixConcentratesOnHotServers) {
  const TrafficMatrix tm = TrafficMatrix::skewed(net, 2000, 1.0, 0.1, 0.8, rng);
  std::unordered_map<std::int32_t, int> dst_count;
  for (const Flow& f : tm.flows) ++dst_count[f.dst.value()];
  // Top-10% of servers (1-2 of 16) should receive the large majority.
  std::vector<int> counts;
  for (const auto& [dst, n] : dst_count) counts.push_back(n);
  std::sort(counts.rbegin(), counts.rend());
  const int top2 = counts[0] + (counts.size() > 1 ? counts[1] : 0);
  EXPECT_GT(top2, 1000);  // > 50% of flows on the hot pair
}

TEST_F(TrafficFixture, HealthyFabricDeliversEverythingAtLowLoad) {
  const TrafficMatrix tm = TrafficMatrix::uniform(net, 50, 0.5, rng);
  const LoadReport r = route_and_load(net, tm);
  EXPECT_EQ(r.unroutable_flows, 0u);
  EXPECT_NEAR(r.delivered_gbps, r.demand_gbps, 1e-9);
  EXPECT_NEAR(r.p99_tail_factor, 1.0, 0.01);
  EXPECT_LT(r.max_link_utilization, 1.0);
}

TEST_F(TrafficFixture, LoadIsConservedOnAccessLinks) {
  // One flow between two specific servers: its full rate must appear on both
  // access links.
  const auto servers = net.servers();
  TrafficMatrix tm;
  tm.flows.push_back(Flow{servers[0], servers.back(), 10.0});
  const LoadReport r = route_and_load(net, tm);
  const LinkId src_access = net.links_at(servers[0])[0];
  const LinkId dst_access = net.links_at(servers.back())[0];
  EXPECT_NEAR(r.link_load_gbps[static_cast<size_t>(src_access.value())], 10.0, 1e-9);
  EXPECT_NEAR(r.link_load_gbps[static_cast<size_t>(dst_access.value())], 10.0, 1e-9);
}

TEST_F(TrafficFixture, EcmpSplitsAcrossSpines) {
  // Cross-leaf flow: with 2 spines the two up-links each carry half.
  const auto servers = net.servers();
  const auto leaves = net.devices_with_role(topology::NodeRole::kTorSwitch);
  TrafficMatrix tm;
  tm.flows.push_back(Flow{servers[0], servers.back(), 8.0});
  const LoadReport r = route_and_load(net, tm);
  double uplink_loads = 0;
  int loaded_uplinks = 0;
  for (const Link& l : net.links()) {
    const bool uplink = topology::is_switch(net.device(l.end_a.device).role) &&
                        topology::is_switch(net.device(l.end_b.device).role);
    const double load = r.link_load_gbps[static_cast<size_t>(l.id.value())];
    if (uplink && load > 0) {
      ++loaded_uplinks;
      uplink_loads += load;
      EXPECT_NEAR(load, 4.0, 1e-9);  // half of 8 per spine
    }
  }
  EXPECT_EQ(loaded_uplinks, 4);  // 2 up + 2 down
  EXPECT_NEAR(uplink_loads, 16.0, 1e-9);
}

TEST_F(TrafficFixture, DownLinkMakesFlowsUnroutableOnlyWhenCut) {
  // Kill one server's access link: flows to/from it become unroutable.
  const auto servers = net.servers();
  net.link_mut(net.links_at(servers[0])[0]).cable.intact = false;
  net.refresh_link(net.links_at(servers[0])[0]);
  TrafficMatrix tm;
  tm.flows.push_back(Flow{servers[0], servers.back(), 1.0});
  tm.flows.push_back(Flow{servers[1], servers.back(), 1.0});
  const LoadReport r = route_and_load(net, tm);
  EXPECT_EQ(r.unroutable_flows, 1u);
  EXPECT_NEAR(r.delivered_gbps, 1.0, 1e-9);
}

TEST_F(TrafficFixture, OverloadClipsDeliveredGoodput) {
  // Push far more than an access link's capacity through one server.
  const auto servers = net.servers();
  TrafficMatrix tm;
  for (int i = 1; i <= 4; ++i) {
    tm.flows.push_back(Flow{servers[0], servers[static_cast<size_t>(i)], 60.0});
  }
  const LoadReport r = route_and_load(net, tm);  // 240G into a 100G access link
  EXPECT_GT(r.max_link_utilization, 1.0);
  EXPECT_LT(r.delivered_gbps, r.demand_gbps);
  EXPECT_NEAR(r.delivered_gbps, 100.0, 5.0);  // clipped to the bottleneck
}

TEST_F(TrafficFixture, FlappingLinkInflatesTailLatency) {
  const auto servers = net.servers();
  TrafficMatrix tm;
  tm.flows.push_back(Flow{servers[0], servers.back(), 1.0});
  const double before = route_and_load(net, tm).p99_tail_factor;

  // Flap the source's access link (every path must use it).
  Link& access = net.link_mut(net.links_at(servers[0])[0]);
  access.gray_until = sim.now() + sim::Duration::hours(1);
  net.refresh_link(access.id);
  const double after = route_and_load(net, tm).p99_tail_factor;
  EXPECT_NEAR(before, 1.0, 0.01);
  EXPECT_GT(after, 50.0);  // §1's "curse of a flapping link"
}

TEST_F(TrafficFixture, TailFactorIsDemandWeightedP99) {
  const auto servers = net.servers();
  TrafficMatrix tm = TrafficMatrix::uniform(net, 300, 1.0, rng);
  // One clean run: p99 == 1.
  EXPECT_NEAR(route_and_load(net, tm).p99_tail_factor, 1.0, 0.01);
  // Degrade one leaf uplink; some flows cross it, p99 should rise above mean.
  const auto leaves = net.devices_with_role(topology::NodeRole::kTorSwitch);
  const LinkId uplink = net.links_between(
      leaves[0], net.devices_with_role(topology::NodeRole::kSpineSwitch)[0])[0];
  net.link_mut(uplink).end_a.condition.contamination = 0.7;
  net.refresh_link(uplink);
  const LoadReport r = route_and_load(net, tm);
  EXPECT_GE(r.p99_tail_factor, r.mean_tail_factor);
  EXPECT_GT(r.mean_tail_factor, 1.0);
}

}  // namespace
}  // namespace smn::net
