// Tests for the application workload layer: gang-scheduled training jobs
// (checkpoint/restart semantics) and the replicated storage service.
#include <gtest/gtest.h>

#include "test_util.h"
#include "topology/builders.h"
#include "workload/storage_service.h"
#include "workload/training_job.h"

namespace smn::workload {
namespace {

using sim::Duration;
using sim::TimePoint;

struct JobFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp =
      topology::build_gpu_cluster({.gpu_servers = 8, .rails = 8, .spines = 2});
  net::Network net{bp, net::Network::Config{}, sim};

  TrainingJob::Config job_config() {
    TrainingJob::Config cfg;
    cfg.servers = net.servers();
    cfg.required_live_links = 8;
    cfg.checkpoint_interval = Duration::minutes(30);
    cfg.restart_overhead = Duration::minutes(10);
    return cfg;
  }

  net::LinkId rail_of(int server_idx, int rail_idx) {
    return net.links_at(net.servers()[static_cast<size_t>(server_idx)])
        [static_cast<size_t>(rail_idx)];
  }
};

TEST_F(JobFixture, HealthyFabricGivesFullGoodput) {
  TrainingJob job{net, job_config()};
  job.start();
  sim.run_until(TimePoint::origin() + Duration::hours(10));
  EXPECT_NEAR(job.goodput(), 1.0, 0.01);
  EXPECT_EQ(job.interruptions(), 0u);
  EXPECT_NEAR(job.useful_gpu_hours(), 10.0 * 8 * 8, 8.0);
}

TEST_F(JobFixture, RailFailureInterruptsAndLosesCheckpointWindow) {
  TrainingJob job{net, job_config()};
  job.start();
  sim.run_until(TimePoint::origin() + Duration::hours(2));
  // Break one rail; the gang halts.
  net::Link& l = net.link_mut(rail_of(3, 5));
  l.cable.intact = false;
  net.refresh_link(l.id);
  sim.run_until(TimePoint::origin() + Duration::hours(4));
  EXPECT_EQ(job.interruptions(), 1u);
  EXPECT_LT(job.goodput(), 0.8);  // 2h outage in 4h elapsed

  // Repair; job pays the restart overhead and resumes.
  l.cable.intact = true;
  net.refresh_link(l.id);
  sim.run_until(TimePoint::origin() + Duration::hours(8));
  EXPECT_GT(job.goodput(), 0.6);
  // Losses include the 2h outage + recompute + restart: more than the raw
  // outage alone.
  EXPECT_GT(job.lost_gpu_hours(), 2.0 * 64);
  EXPECT_GT(job.recomputed_hours(), 0.0);
}

TEST_F(JobFixture, SpareRailAbsorbsAFailure) {
  TrainingJob::Config cfg = job_config();
  cfg.required_live_links = 7;  // job tolerates one dead rail
  TrainingJob job{net, cfg};
  job.start();
  sim.run_until(TimePoint::origin() + Duration::hours(1));
  net::Link& l = net.link_mut(rail_of(0, 0));
  l.cable.intact = false;
  net.refresh_link(l.id);
  sim.run_until(TimePoint::origin() + Duration::hours(6));
  EXPECT_EQ(job.interruptions(), 0u);
  EXPECT_NEAR(job.goodput(), 1.0, 0.01);
}

TEST_F(JobFixture, RepeatedFlappingAmplifiesLossBeyondOutageTime) {
  TrainingJob::Config cfg = job_config();
  cfg.checkpoint_interval = Duration::hours(1);  // long window: big recompute
  TrainingJob job{net, cfg};
  job.start();
  // Three short outages, each just after a checkpoint window fills up.
  for (int i = 0; i < 3; ++i) {
    sim.run_until(TimePoint::origin() + Duration::hours(1.0 + 2.0 * i) +
                  Duration::minutes(50));
    net::Link& l = net.link_mut(rail_of(1, 2));
    l.gray_until = sim.now() + Duration::minutes(5);
    net.refresh_link(l.id);
    sim.run_until(sim.now() + Duration::minutes(6));
    net.refresh_link(l.id);
  }
  sim.run_until(TimePoint::origin() + Duration::hours(8));
  EXPECT_EQ(job.interruptions(), 3u);
  // 15 min of raw outage cost close to 3 x ~50 min of recompute.
  EXPECT_GT(job.recomputed_hours(), 1.5);
}

TEST_F(JobFixture, RejectsBadConfig) {
  TrainingJob::Config cfg;
  EXPECT_THROW(TrainingJob(net, cfg), std::invalid_argument);
  cfg.servers = net.servers();
  cfg.required_live_links = 0;
  EXPECT_THROW(TrainingJob(net, cfg), std::invalid_argument);
}

struct StorageFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 4, .uplinks_per_spine = 2});
  net::Network net{bp, testutil::short_aoc(), sim};
  sim::RngFactory rngs{101};
};

TEST_F(StorageFixture, PlacementsAreDistinctReplicaSets) {
  StorageService svc{net, rngs.stream("st"), {.replication = 3, .shards = 100}};
  for (const auto& replicas : svc.placements()) {
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_NE(replicas[0], replicas[1]);
    EXPECT_NE(replicas[1], replicas[2]);
    EXPECT_NE(replicas[0], replicas[2]);
  }
}

TEST_F(StorageFixture, HealthyPlantHasNoUnderReplication) {
  StorageService svc{net, rngs.stream("st"), {}};
  svc.start();
  sim.run_until(TimePoint::origin() + Duration::days(2));
  EXPECT_DOUBLE_EQ(svc.under_replicated_shard_hours(), 0.0);
  EXPECT_DOUBLE_EQ(svc.unavailable_shard_hours(), 0.0);
}

TEST_F(StorageFixture, ServerOutageOpensVulnerabilityWindow) {
  StorageService svc{net, rngs.stream("st"), {.replication = 3, .shards = 300}};
  svc.start();
  sim.run_until(TimePoint::origin() + Duration::hours(1));
  // Cut one server's access link for 10 hours.
  const net::DeviceId victim = net.servers()[0];
  net::Link& access = net.link_mut(net.links_at(victim)[0]);
  access.cable.intact = false;
  net.refresh_link(access.id);
  sim.run_until(TimePoint::origin() + Duration::hours(11));
  access.cable.intact = true;
  net.refresh_link(access.id);
  sim.run_until(TimePoint::origin() + Duration::hours(12));

  // ~300 * 3/16 ≈ 56 shards hold a replica on the victim; each spent ~10 h
  // under-replicated.
  EXPECT_GT(svc.under_replicated_shard_hours(), 300.0);
  EXPECT_GT(svc.worst_under_replicated(), 30u);
  EXPECT_DOUBLE_EQ(svc.unavailable_shard_hours(), 0.0);  // two replicas remained
}

TEST_F(StorageFixture, TwoFailuresReachLastReplica) {
  StorageService svc{net, rngs.stream("st"), {.replication = 3, .shards = 500}};
  svc.start();
  for (int i = 0; i < 2; ++i) {
    net::Link& access = net.link_mut(net.links_at(net.servers()[static_cast<size_t>(i)])[0]);
    access.cable.intact = false;
    net.refresh_link(access.id);
  }
  sim.run_until(TimePoint::origin() + Duration::hours(6));
  // With 500 shards over 16 servers, some shard almost surely has replicas on
  // both dead servers -> down to its last replica.
  EXPECT_GT(svc.last_replica_episodes(), 0u);
}

TEST_F(StorageFixture, RejectsImpossibleReplication) {
  EXPECT_THROW(StorageService(net, rngs.stream("x"), {.replication = 99, .shards = 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace smn::workload
