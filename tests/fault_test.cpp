// Tests for environment dynamics, contamination accumulation, fault
// injection, and the cascade model.
#include <gtest/gtest.h>

#include "core/check.h"
#include "fault/cascade.h"
#include "fault/contamination.h"
#include "fault/environment.h"
#include "fault/injector.h"
#include "net/network.h"
#include "obs/obs.h"
#include "test_util.h"
#include "topology/builders.h"

namespace smn::fault {
namespace {

using sim::Duration;
using sim::TimePoint;

struct FaultFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 2, .uplinks_per_spine = 2});
  net::Network net{bp, testutil::short_aoc(), sim};
  Environment env;
  sim::RngFactory rngs{77};
  FaultInjector injector{net, env, rngs.stream("inj")};
  CascadeModel cascade{net, env, injector, rngs.stream("casc")};
  ContaminationProcess contamination{net, env, rngs.stream("cont")};

  net::LinkId optical_link() const {
    for (const net::Link& l : net.links()) {
      if (net::is_cleanable(l.medium)) return l.id;
    }
    throw std::logic_error{"no optical link in fixture"};
  }
};

TEST(Environment, DiurnalTemperatureCycles) {
  Environment env;
  double lo = 1e9, hi = -1e9;
  for (int h = 0; h < 24; ++h) {
    const double t = env.temperature_c(TimePoint::origin() + Duration::hours(h));
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_NEAR(lo, 24.0 - 3.0, 0.2);
  EXPECT_NEAR(hi, 24.0 + 3.0, 0.2);
  // 24h periodicity.
  EXPECT_NEAR(env.temperature_c(TimePoint::origin() + Duration::hours(5)),
              env.temperature_c(TimePoint::origin() + Duration::hours(29)), 1e-9);
}

TEST(Environment, HumidityStaysInRange) {
  Environment env;
  for (int h = 0; h < 48; ++h) {
    const double v = env.humidity(TimePoint::origin() + Duration::hours(h));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Environment, VibrationEventsAddAndExpire) {
  Environment env;
  const TimePoint t0 = TimePoint::origin() + Duration::hours(1);
  const double ambient = env.vibration(t0);
  env.add_vibration(t0, Duration::minutes(5), 0.5);
  EXPECT_DOUBLE_EQ(env.vibration(t0), ambient + 0.5);
  EXPECT_DOUBLE_EQ(env.vibration(t0 + Duration::minutes(4)), ambient + 0.5);
  EXPECT_DOUBLE_EQ(env.vibration(t0 + Duration::minutes(5)), ambient);
  env.prune(t0 + Duration::minutes(6));
  EXPECT_DOUBLE_EQ(env.vibration(t0 + Duration::minutes(1)), ambient);  // pruned
}

TEST(Environment, VibrationRaisesStress) {
  Environment env;
  const TimePoint t = TimePoint::origin();
  const double base = env.stress_factor(t);
  env.add_vibration(t, Duration::minutes(5), 1.0);
  EXPECT_GT(env.stress_factor(t), base + 1.0);
}

TEST(Environment, IgnoresNonPositiveVibration) {
  Environment env;
  const TimePoint t = TimePoint::origin();
  const double base = env.vibration(t);
  env.add_vibration(t, Duration::minutes(5), 0.0);
  env.add_vibration(t, Duration::zero(), 1.0);
  EXPECT_DOUBLE_EQ(env.vibration(t), base);
}

TEST_F(FaultFixture, ContaminationAccumulatesOnOpticalEndsOnly) {
  contamination.start();
  sim.run_until(TimePoint::origin() + Duration::days(30));
  bool optical_dirty = false;
  for (const net::Link& l : net.links()) {
    const double c =
        l.end_a.condition.contamination + l.end_b.condition.contamination;
    if (net::is_cleanable(l.medium)) {
      optical_dirty |= c > 0.0;
    } else {
      EXPECT_DOUBLE_EQ(c, 0.0) << "non-optical link contaminated";
    }
  }
  EXPECT_TRUE(optical_dirty);
  EXPECT_GT(contamination.total_contamination(), 0.0);
}

TEST_F(FaultFixture, ContaminationEventuallyDegradesLinks) {
  ContaminationProcess::Config fast;
  fast.mean_accumulation_per_day = 0.05;  // accelerated
  ContaminationProcess proc{net, env, rngs.stream("fastcont"), fast};
  proc.start();
  sim.run_until(TimePoint::origin() + Duration::days(60));
  EXPECT_GT(net.count_links(net::LinkState::kDegraded) +
                net.count_links(net::LinkState::kFlapping),
            0u);
}

TEST_F(FaultFixture, ExposureBumpsContamination) {
  const net::LinkId lid = optical_link();
  double before = net.link(lid).end_a.condition.contamination;
  // Exposure is probabilistic; repeat until it takes (deterministic stream).
  for (int i = 0; i < 64; ++i) contamination.expose(lid, 0);
  EXPECT_GT(net.link(lid).end_a.condition.contamination, before);
}

TEST_F(FaultFixture, ExposureIgnoresIntegratedMedia) {
  for (const net::Link& l : net.links()) {
    if (l.medium == net::CableMedium::kDac) {
      for (int i = 0; i < 16; ++i) contamination.expose(l.id, 0);
      EXPECT_DOUBLE_EQ(net.link(l.id).end_a.condition.contamination, 0.0);
      break;
    }
  }
}

TEST_F(FaultFixture, DirectedInjectionsSetConditions) {
  const net::LinkId lid{0};
  injector.inject_transceiver_failure(lid, 1);
  EXPECT_FALSE(net.link(lid).end_b.condition.transceiver_healthy);
  EXPECT_EQ(net.link(lid).state, net::LinkState::kDown);
  EXPECT_EQ(injector.count(FaultKind::kTransceiverFailure), 1u);

  const net::LinkId lid2{1};
  injector.inject_cable_break(lid2);
  EXPECT_FALSE(net.link(lid2).cable.intact);
  EXPECT_EQ(net.link(lid2).state, net::LinkState::kDown);

  const net::DeviceId dev = net.devices_with_role(topology::NodeRole::kSpineSwitch)[0];
  injector.inject_device_failure(dev);
  EXPECT_FALSE(net.device(dev).healthy);
}

TEST_F(FaultFixture, GrayEpisodeSelfClears) {
  const net::LinkId lid{2};
  injector.inject_gray_episode(lid, Duration::minutes(30));
  EXPECT_EQ(net.link(lid).state, net::LinkState::kFlapping);
  sim.run_until(TimePoint::origin() + Duration::minutes(31));
  EXPECT_EQ(net.link(lid).state, net::LinkState::kUp);
}

TEST_F(FaultFixture, ListenerReceivesEvents) {
  int events = 0;
  injector.subscribe([&](const FaultEvent&) { ++events; });
  injector.inject_cable_break(net::LinkId{3});
  injector.inject_gray_episode(net::LinkId{4}, Duration::minutes(5));
  EXPECT_EQ(events, 2);
  EXPECT_EQ(injector.log().size(), 2u);
}

TEST_F(FaultFixture, BackgroundInjectionProducesFaultsOverAYear) {
  injector.start();
  sim.run_until(TimePoint::origin() + Duration::days(365));
  // 28 links, aggressive AFRs: expect a meaningful number of events.
  EXPECT_GT(injector.log().size(), 10u);
  EXPECT_GT(injector.count(FaultKind::kGrayEpisode), 0u);
}

TEST_F(FaultFixture, OxidationGrowsAndRaisesGrayHazard) {
  injector.start();
  sim.run_until(TimePoint::origin() + Duration::days(365));
  double total_ox = 0;
  for (const net::Link& l : net.links()) {
    total_ox += l.end_a.condition.oxidation + l.end_b.condition.oxidation;
  }
  EXPECT_GT(total_ox, 0.0);
}

TEST_F(FaultFixture, PredictedContactsCoverFaceplateNeighbors) {
  // Pick a leaf switch uplink; the leaf has many ports so it must have
  // faceplate neighbours within +-2 ports.
  const net::DeviceId leaf = net.devices_with_role(topology::NodeRole::kTorSwitch)[0];
  const net::LinkId target = net.links_at(leaf).at(1);
  Disturbance d;
  d.target = target;
  d.at_device = leaf;
  const auto contacts = cascade.predicted_contacts(d);
  EXPECT_FALSE(contacts.empty());
  for (const net::LinkId c : contacts) EXPECT_NE(c, target);
}

TEST_F(FaultFixture, FullRouteContactsIncludeTrayMates) {
  // Uplinks share tray segments; a cable replacement must predict them.
  const net::DeviceId leaf = net.devices_with_role(topology::NodeRole::kTorSwitch)[0];
  const net::DeviceId spine = net.devices_with_role(topology::NodeRole::kSpineSwitch)[0];
  const net::LinkId target = net.links_between(leaf, spine)[0];
  Disturbance faceplate_only{target, leaf, 1.0, false};
  Disturbance full{target, leaf, 1.0, true};
  EXPECT_GE(cascade.predicted_contacts(full).size(),
            cascade.predicted_contacts(faceplate_only).size());
}

TEST_F(FaultFixture, HigherMagnitudeInducesMoreCollateral) {
  const net::DeviceId leaf = net.devices_with_role(topology::NodeRole::kTorSwitch)[0];
  std::size_t human_total = 0, robot_total = 0;
  for (int rep = 0; rep < 60; ++rep) {
    for (const net::LinkId lid : net.links_at(leaf)) {
      human_total += cascade.apply(Disturbance{lid, leaf, 1.0, false}).size();
      robot_total += cascade.apply(Disturbance{lid, leaf, 0.2, false}).size();
    }
  }
  EXPECT_GT(human_total, robot_total);
}

TEST_F(FaultFixture, CascadeEffectsAreLogged) {
  const net::DeviceId leaf = net.devices_with_role(topology::NodeRole::kTorSwitch)[0];
  std::size_t applied = 0;
  for (int rep = 0; rep < 100 && applied == 0; ++rep) {
    applied = cascade.apply(Disturbance{net.links_at(leaf)[0], leaf, 1.0, false}).size();
  }
  EXPECT_GT(applied, 0u);
  EXPECT_EQ(cascade.log().size(), cascade.induced_count());
  EXPECT_LE(cascade.induced_permanent_count(), cascade.induced_count());
}

TEST_F(FaultFixture, InjectedFaultsReachCountersAndFlightRecorder) {
  obs::Obs obs{obs::Options{}};
  injector.set_obs(&obs);
  const net::LinkId target = optical_link();
  injector.inject_gray_episode(target, Duration::minutes(30));
  injector.inject_cable_break(target);

  EXPECT_EQ(obs.metrics()->counter("fault_injected_gray_episode_total")->value(), 1u);
  EXPECT_EQ(obs.metrics()->counter("fault_injected_cable_break_total")->value(), 1u);
  EXPECT_EQ(obs.metrics()->counter("fault_injected_total")->value(), 2u);

  const auto recent = obs.recorder()->recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_STREQ(recent[0].what, "gray-episode");
  EXPECT_STREQ(recent[1].what, "cable-break");
  EXPECT_EQ(recent[0].a, static_cast<std::int64_t>(target.value()));
}

TEST_F(FaultFixture, FlightRecorderStaysBoundedThroughFaultStorm) {
  // A fault storm far larger than the ring must wrap, not grow: the recorder
  // keeps exactly `capacity` records and counts the rest as evicted history.
  obs::Obs obs{obs::Options{.metrics = true,
                            .trace = false,
                            .trace_max_events = 0,
                            .flight_recorder_capacity = 16}};
  injector.set_obs(&obs);
  const net::LinkId target = optical_link();
  for (int i = 0; i < 100; ++i) {
    injector.inject_gray_episode(target, Duration::minutes(1));
  }
  EXPECT_EQ(obs.recorder()->recent().size(), 16u);
  EXPECT_EQ(obs.recorder()->capacity(), 16u);
  EXPECT_EQ(obs.recorder()->total_recorded(), 100u);
  // The surviving window is the most recent faults, all of the same kind here.
  for (const obs::FlightRecorder::Record& r : obs.recorder()->recent()) {
    EXPECT_STREQ(r.what, "gray-episode");
  }
}

// Death-test child body: build a world by hand, inject a fault, force a
// cascade, then trip an invariant mid-cascade. Lives outside the macro
// because EXPECT_DEATH cannot digest braced initializers' commas. Built
// entirely inside the child process: the recorder hook is thread-local.
void crash_mid_cascade() {
  sim::Simulator sim;
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 2, .uplinks_per_spine = 2});
  net::Network net{bp, testutil::short_aoc(), sim};
  Environment env;
  sim::RngFactory rngs{77};
  FaultInjector injector{net, env, rngs.stream("inj")};
  CascadeModel cascade{net, env, injector, rngs.stream("casc")};
  obs::Obs obs{obs::Options{}};
  injector.set_obs(&obs);
  cascade.set_obs(&obs);
  const net::DeviceId leaf = net.devices_with_role(topology::NodeRole::kTorSwitch)[0];
  const net::LinkId target = net.links_at(leaf)[0];
  injector.inject_gray_episode(target, Duration::minutes(30));
  for (int rep = 0; rep < 200 && cascade.log().empty(); ++rep) {
    (void)cascade.apply(Disturbance{target, leaf, 1.0, false});
  }
  SMN_ASSERT(!cascade.log().empty(), "fixture never cascaded");
  SMN_ASSERT(false, "synthetic mid-cascade failure");
}

TEST(FaultFlightRecorderDeathTest, CrashMidCascadeDumpsCausalChain) {
  // The acceptance story for the fault flight records: crash in the middle of
  // a maintenance cascade and the dump on stderr shows the injected fault and
  // the cascade hop that followed it, oldest first (simulated-time order).
  EXPECT_DEATH(crash_mid_cascade(), "flight recorder.*gray-episode.*cascade-hop");
}

TEST_F(FaultFixture, CascadeRegistersVibration) {
  const net::DeviceId leaf = net.devices_with_role(topology::NodeRole::kTorSwitch)[0];
  const double before = env.vibration(sim.now());
  (void)cascade.apply(Disturbance{net.links_at(leaf)[0], leaf, 1.0, false});
  EXPECT_GT(env.vibration(sim.now()), before);
}

}  // namespace
}  // namespace smn::fault
