// Tests for the bench_diff perf-regression gate (tools/bench_diff_core.h):
// number extraction from the bench JSON shape, the tolerance policy, and the
// missing-key rules CI depends on.
#include <gtest/gtest.h>

#include <string>

#include "bench_diff_core.h"

namespace smn::benchdiff {
namespace {

// Trimmed-down versions of the real report shapes the tool runs against.
const std::string kSweepReport = R"({"schema":"smn-sweep-throughput-v1","days":6,
"seeds":12,"rps_serial":41.25,"rps_parallel":160.5,"speedup":3.89,
"sweep":{"replicates":12}})";

const std::string kRoutingReport = R"({"schema":"smn-bench-routing-v1",
"pristine":{"engine_queries_per_sec":1.25e6,"bfs_queries_per_sec":2.0e4},
"degraded":{"engine_queries_per_sec":9.5e5,"bfs_queries_per_sec":1.5e4}})";

TEST(BenchDiffFindNumber, ExtractsPlainAndScientificNumbers) {
  EXPECT_DOUBLE_EQ(find_number(kSweepReport, "rps_serial").value(), 41.25);
  EXPECT_DOUBLE_EQ(find_number(kSweepReport, "rps_parallel").value(), 160.5);
  EXPECT_DOUBLE_EQ(find_number(kRoutingReport, "engine_queries_per_sec").value(), 1.25e6);
}

TEST(BenchDiffFindNumber, MissingKeyAndNonNumericValueAreEmpty) {
  EXPECT_FALSE(find_number(kSweepReport, "rps_turbo").has_value());
  EXPECT_FALSE(find_number(kSweepReport, "schema").has_value());  // string value
  // A key that is a prefix of another must not match it.
  EXPECT_FALSE(find_number(kSweepReport, "rps").has_value());
}

TEST(BenchDiffFindNumber, ToleratesWhitespaceAroundColon) {
  EXPECT_DOUBLE_EQ(find_number("{\"rps\" :\n 7.5}", "rps").value(), 7.5);
}

TEST(BenchDiffPolicy, WithinToleranceAndImprovementsPass) {
  const std::string base = R"({"rps_serial":100.0,"rps_parallel":400.0})";
  const std::string cur = R"({"rps_serial":96.0,"rps_parallel":500.0})";  // -4%, +25%
  const DiffResult r = diff(base, cur, {"rps_serial", "rps_parallel"}, 0.05);
  EXPECT_TRUE(r.ok);
  ASSERT_EQ(r.keys.size(), 2u);
  EXPECT_FALSE(r.keys[0].regression);
  EXPECT_NEAR(r.keys[0].ratio, 0.96, 1e-12);
  EXPECT_FALSE(r.keys[1].regression);
}

TEST(BenchDiffPolicy, DropBeyondToleranceFails) {
  const std::string base = R"({"rps_serial":100.0})";
  const std::string cur = R"({"rps_serial":94.0})";  // -6% vs 5% tolerance
  const DiffResult r = diff(base, cur, {"rps_serial"}, 0.05);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.keys.size(), 1u);
  EXPECT_TRUE(r.keys[0].regression);
  // A looser tolerance accepts the same drop.
  EXPECT_TRUE(diff(base, cur, {"rps_serial"}, 0.10).ok);
}

TEST(BenchDiffPolicy, KeyMissingFromCurrentIsHardFailure) {
  const DiffResult r = diff(R"({"rps_serial":100.0})", R"({"other":1.0})", {"rps_serial"}, 0.05);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.keys[0].missing_current);
}

TEST(BenchDiffPolicy, KeyMissingFromBaselineIsSkippedNotFailed) {
  const DiffResult r = diff(R"({"other":1.0})", R"({"rps_serial":100.0})", {"rps_serial"}, 0.05);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.keys[0].skipped);
  EXPECT_FALSE(r.keys[0].regression);
}

TEST(BenchDiffPolicy, ZeroBaselineNeverDividesAndNeverRegresses) {
  const DiffResult r = diff(R"({"rps":0.0})", R"({"rps":5.0})", {"rps"}, 0.05);
  EXPECT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.keys[0].ratio, 0.0);
}

}  // namespace
}  // namespace smn::benchdiff
