// The observability subsystem's contract: the registry hands out stable
// handles with eager-registration semantics, histograms bucket and flatten
// deterministically, traces serialize to loadable Chrome trace_event JSON,
// the flight recorder keeps exactly the last N records, and — the load-bearing
// property — none of it perturbs the simulation (same trace hash with obs on
// or off).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "scenario/world.h"
#include "topology/builders.h"

namespace smn {
namespace {

using obs::FlightRecorder;
using obs::Histogram;
using obs::Registry;
using obs::SnapshotEntry;
using obs::TraceBuffer;

[[nodiscard]] double value_of(const std::vector<SnapshotEntry>& snap, const std::string& name) {
  for (const SnapshotEntry& e : snap) {
    if (e.name == name) return e.value;
  }
  ADD_FAILURE() << "snapshot has no entry named " << name;
  return -1.0;
}

TEST(Registry, ReRegistrationReturnsTheSameHandle) {
  Registry reg;
  obs::Counter* a = reg.counter("events_total");
  obs::Counter* b = reg.counter("events_total");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);
  a->inc(3);
  EXPECT_EQ(b->value(), 3u);

  obs::Gauge* g1 = reg.gauge("backlog");
  obs::Gauge* g2 = reg.gauge("backlog");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = reg.histogram("hours", {1.0, 4.0});
  Histogram* h2 = reg.histogram("hours", {1.0, 4.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Registry, KindMismatchThrows) {
  Registry reg;
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("x", {1.0}), std::invalid_argument);
  (void)reg.histogram("h", {1.0, 2.0});
  EXPECT_THROW((void)reg.counter("h"), std::invalid_argument);
  // Same name, same kind, different bounds is also a wiring bug.
  EXPECT_THROW((void)reg.histogram("h", {1.0, 3.0}), std::invalid_argument);
}

TEST(Histogram, RejectsNonAscendingBounds) {
  EXPECT_THROW((Histogram{{2.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW((Histogram{{1.0, 1.0}}), std::invalid_argument);
  EXPECT_NO_THROW((Histogram{{}}));  // degenerate: everything lands in +inf
}

TEST(Histogram, BucketsOnUpperEdgeInclusive) {
  Histogram h{{1.0, 4.0, 12.0}};
  h.observe(0.5);   // <= 1      -> bucket 0
  h.observe(1.0);   // == bound  -> bucket 0 (le semantics)
  h.observe(2.0);   //           -> bucket 1
  h.observe(12.0);  // == bound  -> bucket 2
  h.observe(99.0);  //           -> +inf bucket
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 2.0 + 12.0 + 99.0);
}

TEST(Registry, SnapshotIsSortedAndFlattensHistogramsCumulatively) {
  Registry reg;
  reg.counter("zzz_total")->inc(7);
  reg.gauge("aaa_level")->set(2.5);
  Histogram* h = reg.histogram("mid_hours", {1.0, 4.0});
  h->observe(0.5);
  h->observe(2.0);
  h->observe(9.0);

  const std::vector<SnapshotEntry> snap = reg.snapshot();
  // 1 counter + 1 gauge + (2 buckets + sum + count) = 6 entries, sorted.
  ASSERT_EQ(snap.size(), 6u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
  EXPECT_EQ(value_of(snap, "zzz_total"), 7.0);
  EXPECT_EQ(value_of(snap, "aaa_level"), 2.5);
  EXPECT_EQ(value_of(snap, "mid_hours_le_1"), 1.0);  // cumulative
  EXPECT_EQ(value_of(snap, "mid_hours_le_4"), 2.0);
  EXPECT_EQ(value_of(snap, "mid_hours_count"), 3.0);
  EXPECT_DOUBLE_EQ(value_of(snap, "mid_hours_sum"), 11.5);
}

TEST(Registry, SnapshotHashIsStableAndValueSensitive) {
  Registry a;
  Registry b;
  a.counter("n")->inc(5);
  b.counter("n")->inc(5);
  EXPECT_EQ(a.snapshot_hash(), b.snapshot_hash());
  b.counter("n")->inc();
  EXPECT_NE(a.snapshot_hash(), b.snapshot_hash());
}

TEST(Registry, PrometheusExposition) {
  Registry reg;
  reg.counter("jobs_total")->inc(2);
  reg.gauge("backlog")->set(3.0);
  Histogram* h = reg.histogram("hours", {1.0, 4.0});
  h->observe(0.5);
  h->observe(9.0);

  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE jobs_total counter\njobs_total 2\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE backlog gauge\nbacklog 3\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE hours histogram\n"), std::string::npos);
  EXPECT_NE(prom.find("hours_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(prom.find("hours_bucket{le=\"4\"} 1\n"), std::string::npos);
  EXPECT_NE(prom.find("hours_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(prom.find("hours_sum 9.5\n"), std::string::npos);
  EXPECT_NE(prom.find("hours_count 2\n"), std::string::npos);
  // Every line is either a comment or `name value` — no trailing garbage.
  EXPECT_EQ(prom.back(), '\n');
}

TEST(TraceBuffer, RecordsAllPhaseKindsWithSimTimestamps) {
  TraceBuffer tb;
  const sim::TimePoint t1 = sim::TimePoint{} + sim::Duration::hours(1);
  const sim::TimePoint t2 = sim::TimePoint{} + sim::Duration::hours(3);
  tb.instant("detect", "controller", t1, "link", 42);
  tb.complete("repair", "robot", t1, t2, "ticket", 7, "botched", 0);
  tb.async_begin("ticket", "ticket", t1, /*id=*/7);
  tb.async_end("ticket", "ticket", t2, /*id=*/7);

  ASSERT_EQ(tb.size(), 4u);
  EXPECT_EQ(tb.events()[0].ph, TraceBuffer::Phase::kInstant);
  EXPECT_EQ(tb.events()[0].ts_us, t1.count_us());
  EXPECT_EQ(tb.events()[1].ph, TraceBuffer::Phase::kComplete);
  EXPECT_EQ(tb.events()[1].dur_us, (t2 - t1).count_us());
  EXPECT_EQ(tb.events()[2].id, 7u);
  EXPECT_EQ(tb.dropped(), 0u);
}

TEST(TraceBuffer, ChromeJsonIsWellFormed) {
  TraceBuffer tb;
  const sim::TimePoint t1 = sim::TimePoint{} + sim::Duration::hours(1);
  const sim::TimePoint t2 = sim::TimePoint{} + sim::Duration::hours(2);
  tb.instant("detect", "controller", t1, "link", 42);
  tb.complete("repair", "robot", t1, t2);
  tb.async_begin("ticket", "ticket", t1, /*id=*/0xabcd);

  const std::string json = tb.to_chrome_json();
  EXPECT_EQ(json.find("{\"traceEvents\":[{"), 0u);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":3600000000"), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"000000000000abcd\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"link\":42}"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"smn_dropped_events\":0"), std::string::npos);
  // Balanced braces/brackets — the writer closed everything it opened.
  long depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceBuffer, BoundedBufferCountsDrops) {
  TraceBuffer tb{/*max_events=*/2};
  const sim::TimePoint t = sim::TimePoint{};
  tb.instant("a", "t", t);
  tb.instant("b", "t", t);
  tb.instant("c", "t", t);
  tb.instant("d", "t", t);
  EXPECT_EQ(tb.size(), 2u);
  EXPECT_EQ(tb.dropped(), 2u);
  EXPECT_NE(tb.to_chrome_json().find("\"smn_dropped_events\":2"), std::string::npos);
}

TEST(FlightRecorder, KeepsLastNInArrivalOrderAcrossWraparound) {
  FlightRecorder rec{/*capacity=*/4};
  for (std::int64_t i = 0; i < 10; ++i) {
    rec.record(i * 100, "evt", i);
  }
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.capacity(), 4u);
  const std::vector<FlightRecorder::Record> recent = rec.recent();
  ASSERT_EQ(recent.size(), 4u);
  for (std::size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].a, static_cast<std::int64_t>(6 + i));  // oldest first
    EXPECT_EQ(recent[i].t_us, (6 + static_cast<std::int64_t>(i)) * 100);
  }
}

TEST(FlightRecorder, PartiallyFilledRingReportsOnlyWhatHappened) {
  FlightRecorder rec{/*capacity=*/8};
  rec.record(10, "first", 1);
  rec.record(20, "second", 2);
  const std::vector<FlightRecorder::Record> recent = rec.recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].a, 1);
  EXPECT_EQ(recent[1].a, 2);
}

TEST(FlightRecorderDeathTest, AssertFailureDumpsRecentHistory) {
  // The whole point of the recorder: when an invariant breaks, the last N
  // events reach stderr before abort(). The death-test child installs its own
  // recorder (the hook is thread-local and the child is a fresh process).
  EXPECT_DEATH(
      {
        FlightRecorder rec{/*capacity=*/4};
        rec.install();
        rec.record(1000, "link-transition", 5, 2);
        rec.record(2000, "dispatch-robot", 9, 0);
        SMN_ASSERT(false, "synthetic invariant failure");
      },
      "flight recorder.*dispatch-robot");
}

TEST(FlightRecorderDeathTest, UninstalledRecorderDoesNotDump) {
  EXPECT_DEATH(
      {
        FlightRecorder rec{/*capacity=*/4};
        rec.install();
        rec.record(1000, "evt", 1);
        rec.uninstall();
        SMN_ASSERT(false, "no recorder armed");
      },
      "SMN_CHECK failed");
}

TEST(ObsBundle, DisabledOptionsProduceNullFacilities) {
  obs::Obs off{obs::Options::disabled()};
  EXPECT_EQ(off.metrics(), nullptr);
  EXPECT_EQ(off.trace(), nullptr);
  EXPECT_EQ(off.recorder(), nullptr);
  EXPECT_EQ(off.metrics_hash(), 0u);

  obs::Obs on{obs::Options{}};
  EXPECT_NE(on.metrics(), nullptr);
  EXPECT_EQ(on.trace(), nullptr);  // tracing is opt-in
  EXPECT_NE(on.recorder(), nullptr);
  EXPECT_NE(on.metrics_hash(), 0u);  // empty registry still hashes the offset
}

// The subsystem's central promise: instrumentation observes the event stream
// without perturbing it. A world with full observability and a world with
// none must execute the identical event sequence.
TEST(ObsWorld, InstrumentationDoesNotPerturbTheSimulation) {
  const topology::Blueprint bp =
      topology::build_leaf_spine({.leaves = 4, .spines = 2, .servers_per_leaf = 2});
  scenario::WorldConfig base = scenario::WorldConfig::for_level(
      core::AutomationLevel::kL3_HighAutomation);
  base.seed = 11;
  base.faults.transceiver_afr = 4.0;
  base.faults.gray_rate_per_year = 60.0;

  std::uint64_t hash[3] = {};
  std::uint64_t metrics_hash[2] = {};
  for (int run = 0; run < 3; ++run) {
    scenario::WorldConfig cfg = base;
    if (run == 2) {
      cfg.obs = obs::Options::disabled();
    } else {
      cfg.obs.trace = run == 1;  // run 1 additionally traces
    }
    scenario::World world{bp, cfg};
    world.run_for(sim::Duration::days(5));
    hash[run] = world.simulator().trace_hash();
    if (run < 2) metrics_hash[run] = world.obs().metrics_hash();
  }
  EXPECT_EQ(hash[0], hash[1]);
  EXPECT_EQ(hash[0], hash[2]);
  EXPECT_EQ(metrics_hash[0], metrics_hash[1]);
  EXPECT_NE(metrics_hash[0], 0u);
}

// The registry actually sees traffic: a fault-heavy world increments the
// wired instruments, and the flattened snapshot reflects them.
TEST(ObsWorld, WorldMetricsSeeSimulationTraffic) {
  const topology::Blueprint bp =
      topology::build_leaf_spine({.leaves = 4, .spines = 2, .servers_per_leaf = 2});
  scenario::WorldConfig cfg = scenario::WorldConfig::for_level(
      core::AutomationLevel::kL3_HighAutomation);
  cfg.seed = 7;
  cfg.faults.transceiver_afr = 4.0;
  cfg.faults.gray_rate_per_year = 60.0;
  cfg.obs.trace = true;
  scenario::World world{bp, cfg};
  world.run_for(sim::Duration::days(10));

  ASSERT_NE(world.obs().metrics(), nullptr);
  const std::vector<SnapshotEntry> snap = world.obs().metrics()->snapshot();
  EXPECT_GT(value_of(snap, "sim_events_total"), 0.0);
  EXPECT_GT(value_of(snap, "net_link_transitions_total"), 0.0);
  EXPECT_GT(value_of(snap, "tickets_opened_total"), 0.0);
  EXPECT_GT(value_of(snap, "controller_detections_total"), 0.0);
#if SMN_OBS_TRACE_ENABLED
  ASSERT_NE(world.obs().trace(), nullptr);
  EXPECT_GT(world.obs().trace()->size(), 0u);
#endif
}

}  // namespace
}  // namespace smn
