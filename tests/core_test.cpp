// Tests for automation-level traits, the escalation ladder, load migration,
// the traffic profile, and the controller's end-to-end repair loop.
#include <gtest/gtest.h>

#include "core/automation.h"
#include "core/controller.h"
#include "core/escalation.h"
#include "core/migration.h"
#include "core/traffic.h"
#include "scenario/world.h"
#include "test_util.h"
#include "topology/builders.h"

namespace smn::core {
namespace {

using maintenance::RepairActionKind;
using sim::Duration;
using sim::TimePoint;

TEST(Automation, TraitsMatchTheTaxonomy) {
  EXPECT_FALSE(traits(AutomationLevel::kL0_Manual).robots_allowed);
  EXPECT_LT(traits(AutomationLevel::kL1_OperatorAssist).tool_assist_factor, 1.0);
  EXPECT_TRUE(traits(AutomationLevel::kL2_PartialAutomation).supervision_blocking);
  EXPECT_DOUBLE_EQ(traits(AutomationLevel::kL2_PartialAutomation).supervision_fraction, 1.0);
  EXPECT_FALSE(traits(AutomationLevel::kL3_HighAutomation).supervision_blocking);
  EXPECT_GT(traits(AutomationLevel::kL3_HighAutomation).supervision_fraction, 0.0);
  EXPECT_FALSE(traits(AutomationLevel::kL4_FullAutomation).humans_available);
  EXPECT_DOUBLE_EQ(traits(AutomationLevel::kL4_FullAutomation).supervision_fraction, 0.0);
}

TEST(Traffic, DiurnalShapeAndLowWindows) {
  TrafficProfile p;
  EXPECT_NEAR(p.utilization(TimePoint::origin() + Duration::hours(15)), 0.80, 0.01);
  EXPECT_NEAR(p.utilization(TimePoint::origin() + Duration::hours(3)), 0.30, 0.01);
  const TimePoint peak = TimePoint::origin() + Duration::hours(15);
  EXPECT_FALSE(p.is_low(peak, 0.45));
  const TimePoint window = p.next_low_window(peak, 0.45);
  EXPECT_GT(window, peak);
  EXPECT_TRUE(p.is_low(window, 0.45));
  // Threshold never reached => returns `from`.
  EXPECT_EQ(p.next_low_window(peak, 0.0), peak);
}

struct EscalationFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 2, .uplinks_per_spine = 2});
  net::Network net{bp, testutil::short_aoc(), sim};
  maintenance::TicketSystem tickets;
  EscalationPolicy policy;

  net::LinkId optical_link() const {
    for (const net::Link& l : net.links()) {
      if (net::is_cleanable(l.medium)) return l.id;
    }
    throw std::logic_error{"no optical link"};
  }

  maintenance::Ticket make_ticket(net::LinkId link, int actions = 0) {
    maintenance::Ticket t;
    t.id = 0;
    t.link = link;
    t.opened = sim.now();
    t.actions_taken = actions;
    return t;
  }

  void add_resolved_history(net::LinkId link, int count) {
    for (int i = 0; i < count; ++i) {
      const auto id = tickets.open(sim.now(), link, telemetry::IssueKind::kFlapping, true);
      tickets.mark_dispatched(*id, sim.now());
      tickets.mark_resolved(*id, sim.now(), "technician");
    }
  }
};

TEST_F(EscalationFixture, HardEvidenceShortCircuits) {
  const net::LinkId lid{0};
  net.link_mut(lid).cable.intact = false;
  EXPECT_EQ(policy.decide(net, tickets, make_ticket(lid)).kind,
            RepairActionKind::kReplaceCable);
  net.link_mut(lid).cable.intact = true;

  net.link_mut(lid).end_b.condition.transceiver_healthy = false;
  const auto d = policy.decide(net, tickets, make_ticket(lid));
  EXPECT_EQ(d.kind, RepairActionKind::kReplaceTransceiver);
  EXPECT_EQ(d.end, 1);
  net.link_mut(lid).end_b.condition.transceiver_healthy = true;

  net.link_mut(lid).end_a.condition.transceiver_seated = false;
  EXPECT_EQ(policy.decide(net, tickets, make_ticket(lid)).kind, RepairActionKind::kReseat);
  net.link_mut(lid).end_a.condition.transceiver_seated = true;

  net.set_device_health(net.link(lid).end_b.device, false);
  EXPECT_EQ(policy.decide(net, tickets, make_ticket(lid)).kind,
            RepairActionKind::kReplaceDevice);
}

TEST_F(EscalationFixture, SoftSymptomsWalkTheLadder) {
  const net::LinkId lid = optical_link();
  EXPECT_EQ(policy.decide(net, tickets, make_ticket(lid, 0)).kind,
            RepairActionKind::kReseat);
  EXPECT_EQ(policy.decide(net, tickets, make_ticket(lid, 2)).kind,
            RepairActionKind::kClean);
  EXPECT_EQ(policy.decide(net, tickets, make_ticket(lid, 4)).kind,
            RepairActionKind::kReplaceTransceiver);
  EXPECT_EQ(policy.decide(net, tickets, make_ticket(lid, 6)).kind,
            RepairActionKind::kReplaceCable);
  EXPECT_EQ(policy.decide(net, tickets, make_ticket(lid, 7)).kind,
            RepairActionKind::kReplaceDevice);
}

TEST_F(EscalationFixture, EndsAlternateAcrossRungs) {
  const net::LinkId lid = optical_link();
  EXPECT_EQ(policy.decide(net, tickets, make_ticket(lid, 0)).end, 0);
  EXPECT_EQ(policy.decide(net, tickets, make_ticket(lid, 1)).end, 1);
}

TEST_F(EscalationFixture, RepeatTicketsAdvanceTheStage) {
  const net::LinkId lid = optical_link();
  add_resolved_history(lid, 2);
  // Two recent resolutions + fresh ticket => stage 2 => clean.
  EXPECT_EQ(policy.decide(net, tickets, make_ticket(lid)).kind,
            RepairActionKind::kClean);
}

TEST_F(EscalationFixture, NonCleanableSkipsCleaningRung) {
  net::LinkId dac;
  for (const net::Link& l : net.links()) {
    if (l.medium == net::CableMedium::kDac) {
      dac = l.id;
      break;
    }
  }
  EXPECT_EQ(policy.decide(net, tickets, make_ticket(dac, 2)).kind,
            RepairActionKind::kReplaceTransceiver);
}

TEST_F(EscalationFixture, DisabledLadderJumpsToReplace) {
  EscalationPolicy no_ladder{EscalationPolicy::Config{.ladder_enabled = false}};
  const net::LinkId lid = optical_link();
  EXPECT_EQ(no_ladder.decide(net, tickets, make_ticket(lid, 0)).kind,
            RepairActionKind::kReplaceTransceiver);
}

TEST_F(EscalationFixture, StaleHistoryDoesNotCount) {
  // History resolved 30 days ago with a 14-day window => stage stays 0.
  const net::LinkId lid = optical_link();
  add_resolved_history(lid, 3);
  maintenance::Ticket t = make_ticket(lid);
  t.opened = sim.now() + Duration::days(30);
  EXPECT_EQ(policy.decide(net, tickets, t).kind, RepairActionKind::kReseat);
}

TEST_F(EscalationFixture, MigratorDrainsOnlyWithRedundancy) {
  LoadMigrator migrator{net};
  const net::DeviceId leaf = net.devices_with_role(topology::NodeRole::kTorSwitch)[0];
  const net::DeviceId spine = net.devices_with_role(topology::NodeRole::kSpineSwitch)[0];
  const auto uplinks = net.links_between(leaf, spine);
  ASSERT_EQ(uplinks.size(), 2u);

  // Uplinks are redundant: drainable.
  const auto drained = migrator.drain_for_work({uplinks[0]});
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(net.link(uplinks[0]).state, net::LinkState::kDown);
  migrator.restore(drained);
  EXPECT_EQ(net.link(uplinks[0]).state, net::LinkState::kUp);

  // A server's single access link is not drainable.
  const net::DeviceId srv = net.servers()[0];
  const net::LinkId access = net.links_at(srv)[0];
  const auto refused = migrator.drain_for_work({access});
  EXPECT_TRUE(refused.empty());
  EXPECT_EQ(net.link(access).state, net::LinkState::kUp);
  EXPECT_EQ(migrator.refusals(), 1u);
  EXPECT_EQ(migrator.drains(), 1u);
}

// --- controller end-to-end, via the scenario facade ---

struct ControllerFixture : ::testing::Test {
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 2, .uplinks_per_spine = 2});

  scenario::WorldConfig quiet_config(AutomationLevel level) {
    scenario::WorldConfig cfg = scenario::WorldConfig::for_level(level);
    cfg.network = testutil::short_aoc();
    // Silence background noise so tests observe only directed faults.
    cfg.faults.transceiver_afr = 0.0;
    cfg.faults.cable_afr = 0.0;
    cfg.faults.switch_afr = 0.0;
    cfg.faults.server_nic_afr = 0.0;
    cfg.faults.gray_rate_per_year = 0.0;
    cfg.faults.oxidation_rate_per_year = 0.0;
    cfg.contamination.mean_accumulation_per_day = 0.0;
    cfg.detection.false_positive_per_year = 0.0;
    cfg.fleet.failure_per_job = 0.0;
    cfg.technicians.quality.botch_probability = 0.0;
    return cfg;
  }
};

TEST_F(ControllerFixture, L3RepairsDownLinkWithRobotInMinutes) {
  scenario::World world{bp, quiet_config(AutomationLevel::kL3_HighAutomation)};
  world.start();
  world.injector().inject_transceiver_failure(net::LinkId{0}, 0);
  // Unseat presents as Down; ladder sees dead module and replaces it.
  world.run_for(Duration::hours(8));
  EXPECT_EQ(world.network().link(net::LinkId{0}).state, net::LinkState::kUp);
  ASSERT_EQ(world.tickets().count(maintenance::TicketState::kResolved), 1u);
  const maintenance::Ticket& t = world.tickets().all()[0];
  EXPECT_EQ(t.resolved_by, "robot");
  EXPECT_LT((t.resolved - t.opened).to_hours(), 2.0);
}

TEST_F(ControllerFixture, L0RepairsViaTechnicianOnHoursToDaysScale) {
  scenario::World world{bp, quiet_config(AutomationLevel::kL0_Manual)};
  world.start();
  world.injector().inject_transceiver_failure(net::LinkId{0}, 0);
  world.run_for(Duration::days(14));
  EXPECT_EQ(world.network().link(net::LinkId{0}).state, net::LinkState::kUp);
  ASSERT_GE(world.tickets().count(maintenance::TicketState::kResolved), 1u);
  const maintenance::Ticket& t = world.tickets().all()[0];
  EXPECT_EQ(t.resolved_by, "technician");
  EXPECT_GT((t.resolved - t.opened).to_hours(), 0.5);
}

TEST_F(ControllerFixture, VerifyBeforeDispatchCancelsTransients) {
  scenario::WorldConfig cfg = quiet_config(AutomationLevel::kL3_HighAutomation);
  scenario::World world{bp, cfg};
  world.start();
  // Short gray episode: by the time verification fires, the link is healthy.
  world.injector().inject_gray_episode(net::LinkId{0}, Duration::minutes(3));
  world.run_for(Duration::hours(3));
  EXPECT_EQ(world.controller().verified_transients(), 1u);
  EXPECT_EQ(world.tickets().count(maintenance::TicketState::kCancelled), 1u);
  EXPECT_EQ(world.fleet().completed(), 0u);  // no hardware was touched
}

TEST_F(ControllerFixture, L0DoesNotVerifyAndRollsAnyway) {
  scenario::World world{bp, quiet_config(AutomationLevel::kL0_Manual)};
  world.start();
  world.injector().inject_gray_episode(net::LinkId{0}, Duration::hours(1));
  world.run_for(Duration::days(10));
  // The transient self-cleared long before the tech arrived, but a truck
  // rolled: ticket resolved by the technician doing a no-op reseat.
  EXPECT_GE(world.technicians().completed(), 1u);
}

TEST_F(ControllerFixture, EscalatesThroughLadderToCleanContamination) {
  scenario::WorldConfig cfg = quiet_config(AutomationLevel::kL3_HighAutomation);
  cfg.controller.verify_delay = Duration::minutes(5);
  scenario::World world{bp, cfg};
  world.start();
  // Find an optical link and soak one end-face.
  net::LinkId optical;
  for (const net::Link& l : world.network().links()) {
    if (net::is_cleanable(l.medium)) {
      optical = l.id;
      break;
    }
  }
  world.network().link_mut(optical).end_a.condition.contamination = 0.9;
  world.network().refresh_link(optical);
  world.run_for(Duration::days(2));
  // Contamination cannot be reseated away; the ladder must reach cleaning.
  EXPECT_EQ(world.network().link(optical).state, net::LinkState::kUp);
  EXPECT_LT(world.network().link(optical).end_a.condition.contamination, 0.35);
  EXPECT_GE(world.fleet().completed_of(RepairActionKind::kClean), 1u);
}

TEST_F(ControllerFixture, L2SupervisionGatesRobotConcurrency) {
  scenario::WorldConfig cfg = quiet_config(AutomationLevel::kL2_PartialAutomation);
  cfg.controller.supervisors = 1;
  scenario::World world{bp, cfg};
  world.start();
  for (int i = 0; i < 6; ++i) {
    world.injector().inject_transceiver_failure(net::LinkId{i}, 0);
  }
  world.run_for(Duration::days(2));
  EXPECT_EQ(world.tickets().count(maintenance::TicketState::kResolved), 6u);
  EXPECT_GT(world.controller().supervision_hours(), 0.0);
}

TEST_F(ControllerFixture, L4HandlesCableBreakWithoutHumans) {
  scenario::World world{bp, quiet_config(AutomationLevel::kL4_FullAutomation)};
  world.start();
  const net::DeviceId leaf =
      world.network().devices_with_role(topology::NodeRole::kTorSwitch)[0];
  const net::DeviceId spine =
      world.network().devices_with_role(topology::NodeRole::kSpineSwitch)[0];
  const net::LinkId uplink = world.network().links_between(leaf, spine)[0];
  world.injector().inject_cable_break(uplink);
  world.run_for(Duration::days(1));
  EXPECT_EQ(world.network().link(uplink).state, net::LinkState::kUp);
  EXPECT_EQ(world.technicians().completed(), 0u);  // no humans involved
  EXPECT_GE(world.fleet().completed_of(RepairActionKind::kReplaceCable), 1u);
  EXPECT_DOUBLE_EQ(world.controller().supervision_hours(), 0.0);
}

TEST_F(ControllerFixture, ImpactAwareControllerDrainsContacts) {
  scenario::WorldConfig cfg = quiet_config(AutomationLevel::kL3_HighAutomation);
  scenario::World world{bp, cfg};
  world.start();
  world.injector().inject_transceiver_failure(net::LinkId{8}, 0);
  world.run_for(Duration::days(1));
  EXPECT_GT(world.controller().migrator().drains() +
                world.controller().migrator().refusals(),
            0u);
}

TEST_F(ControllerFixture, ProactiveSwitchWideReseatTriggers) {
  scenario::WorldConfig cfg = quiet_config(AutomationLevel::kL3_HighAutomation);
  cfg.controller.proactive.enabled = true;
  cfg.controller.proactive.scan_interval = Duration::hours(1);
  cfg.controller.proactive.switch_reseat_trigger = 2;
  cfg.controller.verify_delay = Duration::minutes(1);
  scenario::World world{bp, cfg};
  world.start();

  // Two reseat-fixes on the same spine switch within the window.
  const net::DeviceId spine =
      world.network().devices_with_role(topology::NodeRole::kSpineSwitch)[0];
  const auto lids = world.network().links_at(spine);
  ASSERT_GE(lids.size(), 3u);
  for (int i = 0; i < 2; ++i) {
    net::Link& l = world.network().link_mut(lids[static_cast<size_t>(i)]);
    const int end = l.end_a.device == spine ? 0 : 1;
    (end == 0 ? l.end_a : l.end_b).condition.transceiver_seated = false;
    world.network().refresh_link(l.id);
  }
  world.run_for(Duration::days(3));
  EXPECT_GT(world.controller().proactive_actions(), 0u);
  // Proactive reseats covered other links on that switch too.
  std::size_t proactive_tickets = 0;
  for (const maintenance::Ticket& t : world.tickets().all()) {
    if (t.proactive) ++proactive_tickets;
  }
  EXPECT_GE(proactive_tickets, lids.size() - 2);
}

TEST_F(ControllerFixture, FeatureVectorReflectsHistory) {
  scenario::World world{bp, quiet_config(AutomationLevel::kL3_HighAutomation)};
  world.start();
  world.run_for(Duration::days(1));
  const telemetry::FeatureVector before =
      world.controller().features_for(net::LinkId{0});
  EXPECT_DOUBLE_EQ(before.flaps_recent, 0.0);
  EXPECT_DOUBLE_EQ(before.repair_count, 0.0);

  world.injector().inject_transceiver_failure(net::LinkId{0}, 0);
  world.run_for(Duration::days(2));
  const telemetry::FeatureVector after =
      world.controller().features_for(net::LinkId{0});
  EXPECT_GT(after.repair_count, 0.0);
  EXPECT_GT(after.age, 0.0);
}

TEST_F(ControllerFixture, CriticalLinksGetHighPriorityAndFastVerify) {
  scenario::WorldConfig cfg = quiet_config(AutomationLevel::kL3_HighAutomation);
  cfg.controller.verify_delay = Duration::minutes(40);
  scenario::World world{bp, cfg};
  world.start();

  const net::LinkId critical{0};
  const net::LinkId normal{3};
  world.controller().set_critical(critical, true);
  EXPECT_TRUE(world.controller().is_critical(critical));

  // Persistent flapping on both links.
  for (const net::LinkId lid : {critical, normal}) {
    world.network().link_mut(lid).gray_until = world.now() + Duration::hours(12);
    world.network().refresh_link(lid);
  }
  world.run_for(Duration::hours(12));

  std::optional<maintenance::Ticket> crit_ticket, norm_ticket;
  for (const maintenance::Ticket& t : world.tickets().all()) {
    if (t.link == critical && !crit_ticket) crit_ticket = t;
    if (t.link == normal && !norm_ticket) norm_ticket = t;
  }
  ASSERT_TRUE(crit_ticket.has_value());
  ASSERT_TRUE(norm_ticket.has_value());
  EXPECT_EQ(crit_ticket->priority, maintenance::TicketPriority::kHigh);
  EXPECT_EQ(norm_ticket->priority, maintenance::TicketPriority::kNormal);
  // The critical repair completed well before the normal one (which waits
  // for full verification and may defer to a low-utilization window).
  ASSERT_EQ(crit_ticket->state, maintenance::TicketState::kResolved);
  const Duration crit_window = crit_ticket->resolved - crit_ticket->opened;
  EXPECT_LT(crit_window.to_minutes(), 60.0);
  if (norm_ticket->state == maintenance::TicketState::kResolved) {
    EXPECT_LT(crit_window, norm_ticket->resolved - norm_ticket->opened);
  }
  world.controller().set_critical(critical, false);
  EXPECT_FALSE(world.controller().is_critical(critical));
}

TEST_F(ControllerFixture, DeterministicAcrossRuns) {
  auto run_once = [&]() {
    scenario::WorldConfig cfg = scenario::WorldConfig::for_level(
        AutomationLevel::kL3_HighAutomation);
    cfg.seed = 99;
    scenario::World world{bp, cfg};
    world.run_for(Duration::days(20));
    return std::tuple{world.tickets().total(), world.injector().log().size(),
                      world.availability().fleet_availability()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace smn::core
