// Differential oracle for the continuation-style workflow scheduler: the
// legacy per-callback scheduling (Config::use_fom = false) is the reference
// semantics; the fom port must reproduce it exactly — same per-ticket
// outcomes, same availability, same obs metrics (minus the queue-pressure
// counters the port exists to change) — across structurally different
// topology families.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "maintenance/ticket.h"
#include "obs/metrics.h"
#include "scenario/world.h"
#include "topology/builders.h"

namespace {

using smn::maintenance::Ticket;
using smn::obs::SnapshotEntry;
using smn::scenario::World;
using smn::scenario::WorldConfig;
using smn::topology::Blueprint;

struct TopologyCase {
  const char* name;
  Blueprint (*build)();
};

const TopologyCase kTopologies[] = {
    {"leaf-spine",
     [] { return smn::topology::build_leaf_spine({.leaves = 4, .spines = 2, .servers_per_leaf = 2}); }},
    {"fat-tree", [] { return smn::topology::build_fat_tree({.k = 4}); }},
    {"jellyfish",
     [] {
       return smn::topology::build_jellyfish(
           {.switches = 12, .network_degree = 4, .servers_per_switch = 2, .seed = 7});
     }},
    {"dragonfly",
     [] {
       return smn::topology::build_dragonfly(
           {.routers_per_group = 2, .servers_per_router = 1, .global_per_router = 1});
     }},
    {"torus", [] { return smn::topology::build_torus2d({.x = 4, .y = 4, .servers_per_node = 1}); }},
};

/// Metrics the port deliberately changes: raw event throughput and the
/// per-component wakeup counters. Everything else must match exactly.
[[nodiscard]] bool is_queue_pressure_metric(const std::string& name) {
  return name == "sim_events_total" || name.starts_with("sim_wakeups_");
}

[[nodiscard]] std::vector<SnapshotEntry> filtered_snapshot(World& world) {
  std::vector<SnapshotEntry> out;
  if (const smn::obs::Registry* reg = world.obs().metrics()) {
    for (SnapshotEntry& e : reg->snapshot()) {
      if (!is_queue_pressure_metric(e.name)) out.push_back(std::move(e));
    }
  }
  return out;
}

[[nodiscard]] std::unique_ptr<World> run_world(const Blueprint& bp, bool fom) {
  WorldConfig cfg = WorldConfig::for_level(smn::core::AutomationLevel::kL3_HighAutomation);
  cfg.seed = 11;
  cfg.fom_workflows = fom;
  auto world = std::make_unique<World>(bp, cfg);
  world->run_for(smn::sim::Duration::days(14));
  world->check_invariants();
  return world;
}

TEST(FomDiffTest, FomPortMatchesLegacyReferenceAcrossTopologies) {
  for (const TopologyCase& tc : kTopologies) {
    SCOPED_TRACE(tc.name);
    const Blueprint bp = tc.build();
    std::unique_ptr<World> legacy = run_world(bp, /*fom=*/false);
    std::unique_ptr<World> ported = run_world(bp, /*fom=*/true);

    // Per-ticket outcomes: same tickets, same lifecycle timestamps, same
    // resolution attribution, same attempt counts.
    const std::vector<Ticket>& lt = legacy->tickets().all();
    const std::vector<Ticket>& pt = ported->tickets().all();
    ASSERT_EQ(lt.size(), pt.size());
    for (std::size_t i = 0; i < lt.size(); ++i) {
      SCOPED_TRACE("ticket " + std::to_string(lt[i].id));
      EXPECT_EQ(lt[i].id, pt[i].id);
      EXPECT_EQ(lt[i].link.value(), pt[i].link.value());
      EXPECT_EQ(lt[i].issue, pt[i].issue);
      EXPECT_EQ(lt[i].state, pt[i].state);
      EXPECT_EQ(lt[i].opened.count_us(), pt[i].opened.count_us());
      EXPECT_EQ(lt[i].resolved.count_us(), pt[i].resolved.count_us());
      EXPECT_EQ(lt[i].resolved_by, pt[i].resolved_by);
      EXPECT_EQ(lt[i].actions_taken, pt[i].actions_taken);
    }

    // Availability: the physical outcome must be bit-identical.
    EXPECT_EQ(legacy->availability().fleet_availability(),
              ported->availability().fleet_availability());
    EXPECT_EQ(legacy->availability().downtime_link_hours(),
              ported->availability().downtime_link_hours());

    // Workflow tallies.
    EXPECT_EQ(legacy->technicians().completed(), ported->technicians().completed());
    EXPECT_EQ(legacy->technicians().labor_hours(), ported->technicians().labor_hours());
    ASSERT_TRUE(legacy->has_fleet());
    EXPECT_EQ(legacy->fleet().completed(), ported->fleet().completed());
    EXPECT_EQ(legacy->fleet().escalations(), ported->fleet().escalations());
    EXPECT_EQ(legacy->fleet().busy_hours(), ported->fleet().busy_hours());

    // Obs metrics, minus the queue-pressure counters the port changes.
    const std::vector<SnapshotEntry> lm = filtered_snapshot(*legacy);
    const std::vector<SnapshotEntry> pm = filtered_snapshot(*ported);
    ASSERT_EQ(lm.size(), pm.size());
    for (std::size_t i = 0; i < lm.size(); ++i) {
      EXPECT_EQ(lm[i].name, pm[i].name);
      EXPECT_EQ(lm[i].value, pm[i].value) << lm[i].name;
    }
    EXPECT_EQ(smn::obs::snapshot_hash(lm), smn::obs::snapshot_hash(pm));

    // Queue pressure: the fom port never adds events (start/finish wakeups
    // replace the legacy pair one-for-one; coalesced row-unlock rechecks can
    // only subtract).
    EXPECT_LE(ported->simulator().events_processed(),
              legacy->simulator().events_processed());
  }
}

}  // namespace
