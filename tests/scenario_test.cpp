// End-to-end integration tests over the scenario facade: full worlds running
// weeks of simulated time, parameterized across automation levels.
#include <gtest/gtest.h>

#include "scenario/world.h"
#include "test_util.h"
#include "topology/builders.h"

namespace smn::scenario {
namespace {

using core::AutomationLevel;
using sim::Duration;

class LevelSweep : public ::testing::TestWithParam<AutomationLevel> {
 protected:
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 6, .spines = 2, .servers_per_leaf = 4, .uplinks_per_spine = 2});

  WorldConfig config() {
    WorldConfig cfg = WorldConfig::for_level(GetParam());
    cfg.network = testutil::short_aoc();
    cfg.seed = 1234;
    return cfg;
  }
};

TEST_P(LevelSweep, ThirtyDaysRunsCleanAndInvariantsHold) {
  World world{bp, config()};
  world.run_for(Duration::days(30));

  // Availability is a probability; impairment likewise.
  const double avail = world.availability().fleet_availability();
  EXPECT_GE(avail, 0.0);
  EXPECT_LE(avail, 1.0);
  EXPECT_GE(world.availability().fleet_impairment(), 0.0);

  // Every ticket is in a terminal or live state with sane timestamps.
  for (const maintenance::Ticket& t : world.tickets().all()) {
    if (t.state == maintenance::TicketState::kResolved) {
      EXPECT_GE(t.resolved.count_us(), t.opened.count_us());
      EXPECT_FALSE(t.resolved_by.empty());
    }
    EXPECT_LE(t.actions_taken, world.controller().config().max_attempts_per_ticket);
  }

  // No link may end the run admin-down: every drain must have been restored.
  for (const net::Link& l : world.network().links()) {
    EXPECT_FALSE(l.admin_down) << "leaked drain on link " << l.id.value();
  }
}

TEST_P(LevelSweep, HardFaultsEventuallyGetRepaired) {
  WorldConfig cfg = config();
  // Quiet background; directed faults only.
  cfg.faults.transceiver_afr = 0;
  cfg.faults.cable_afr = 0;
  cfg.faults.switch_afr = 0;
  cfg.faults.server_nic_afr = 0;
  cfg.faults.gray_rate_per_year = 0;
  cfg.faults.oxidation_rate_per_year = 0;
  cfg.contamination.mean_accumulation_per_day = 0;
  cfg.detection.false_positive_per_year = 0;
  cfg.technicians.quality.botch_probability = 0;
  cfg.fleet.failure_per_job = 0;
  World world{bp, cfg};
  world.start();
  for (int i = 0; i < 5; ++i) {
    world.injector().inject_transceiver_failure(net::LinkId{3 * i}, i % 2);
  }
  world.run_for(Duration::days(21));
  EXPECT_EQ(world.network().count_links(net::LinkState::kDown), 0u);
  EXPECT_GE(world.tickets().count(maintenance::TicketState::kResolved), 5u);
}

TEST_P(LevelSweep, DeterministicForFixedSeed) {
  auto fingerprint = [&] {
    World world{bp, config()};
    world.run_for(Duration::days(15));
    return std::tuple{world.tickets().total(), world.injector().log().size(),
                      world.cascade().induced_count(),
                      world.availability().downtime_link_hours()};
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, LevelSweep,
    ::testing::Values(AutomationLevel::kL0_Manual, AutomationLevel::kL1_OperatorAssist,
                      AutomationLevel::kL2_PartialAutomation,
                      AutomationLevel::kL3_HighAutomation,
                      AutomationLevel::kL4_FullAutomation),
    [](const auto& pi) { return std::string{core::to_string(pi.param)}.substr(0, 2); });

TEST(ScenarioPresets, LevelPresetsMatchTraits) {
  EXPECT_FALSE(WorldConfig::for_level(AutomationLevel::kL0_Manual).use_robots);
  EXPECT_FALSE(WorldConfig::for_level(AutomationLevel::kL1_OperatorAssist).use_robots);
  EXPECT_LT(WorldConfig::for_level(AutomationLevel::kL1_OperatorAssist)
                .technicians.assist_factor,
            1.0);
  EXPECT_TRUE(WorldConfig::for_level(AutomationLevel::kL2_PartialAutomation).use_robots);
  const WorldConfig l4 = WorldConfig::for_level(AutomationLevel::kL4_FullAutomation);
  EXPECT_TRUE(l4.fleet.can_replace_cable);
  EXPECT_TRUE(l4.fleet.can_replace_device);
}

TEST(ScenarioWorld, DefaultFleetRosterCoversAllSwitchRows) {
  const topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 6, .spines = 2, .servers_per_leaf = 4});
  WorldConfig cfg = WorldConfig::for_level(AutomationLevel::kL3_HighAutomation);
  World world{bp, cfg};
  ASSERT_TRUE(world.has_fleet());
  for (const net::Link& l : world.network().links()) {
    EXPECT_TRUE(world.fleet().reachable(l.id, 0));
    EXPECT_TRUE(world.fleet().reachable(l.id, 1));
  }
}

TEST(ScenarioWorld, ContaminationStormIsEventuallyCleanedAtL3) {
  const topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 6, .spines = 2, .servers_per_leaf = 4});
  WorldConfig cfg = WorldConfig::for_level(AutomationLevel::kL3_HighAutomation);
  cfg.network = testutil::short_aoc();
  cfg.contamination.mean_accumulation_per_day = 0.0;  // only the storm
  World world{bp, cfg};
  world.start();
  int soiled = 0;
  for (const net::Link& l : world.network().links()) {
    if (net::is_cleanable(l.medium)) {
      world.network().link_mut(l.id).end_a.condition.contamination = 0.8;
      world.network().refresh_link(l.id);
      ++soiled;
    }
  }
  ASSERT_GT(soiled, 4);
  world.run_for(Duration::days(14));
  // All flapping links were driven back up by the ladder (reseat -> clean).
  EXPECT_EQ(world.network().count_links(net::LinkState::kFlapping), 0u);
  EXPECT_GE(static_cast<int>(world.fleet().completed_of(
                maintenance::RepairActionKind::kClean)),
            soiled / 2);
}

TEST(ScenarioWorld, RunForAdvancesClockExactly) {
  const topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 2, .spines = 1, .servers_per_leaf = 1});
  World world{bp, WorldConfig::for_level(AutomationLevel::kL3_HighAutomation)};
  world.run_for(Duration::days(3));
  EXPECT_DOUBLE_EQ(world.now().to_days(), 3.0);
  world.run_for(Duration::hours(12));
  EXPECT_DOUBLE_EQ(world.now().to_hours(), 84.0);
}

}  // namespace
}  // namespace smn::scenario
