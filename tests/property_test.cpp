// Property-style parameterized suites: invariants that must hold across
// whole families of inputs, not just hand-picked cases.
#include <gtest/gtest.h>

#include <set>

#include "analysis/cost.h"
#include "core/escalation.h"
#include "fault/cascade.h"
#include "net/link.h"
#include "net/network.h"
#include "net/routing.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "test_util.h"
#include "topology/builders.h"
#include "topology/metrics.h"

namespace smn {
namespace {

using sim::Duration;
using sim::TimePoint;

// ---------- Blueprint invariants across every builder/size ----------

struct BlueprintCase {
  const char* name;
  topology::Blueprint (*build)();
};

topology::Blueprint bp_fat4() { return topology::build_fat_tree({.k = 4}); }
topology::Blueprint bp_fat8() { return topology::build_fat_tree({.k = 8}); }
topology::Blueprint bp_ls_small() {
  return topology::build_leaf_spine({.leaves = 4, .spines = 2, .servers_per_leaf = 3});
}
topology::Blueprint bp_ls_wide() {
  return topology::build_leaf_spine(
      {.leaves = 20, .spines = 6, .servers_per_leaf = 10, .uplinks_per_spine = 2});
}
topology::Blueprint bp_jelly() {
  return topology::build_jellyfish(
      {.switches = 30, .network_degree = 6, .servers_per_switch = 3, .seed = 11});
}
topology::Blueprint bp_jelly_dense() {
  return topology::build_jellyfish(
      {.switches = 24, .network_degree = 12, .servers_per_switch = 2, .seed = 12});
}
topology::Blueprint bp_xpander() {
  return topology::build_xpander(
      {.network_degree = 6, .lift = 5, .servers_per_switch = 3, .seed = 13});
}
topology::Blueprint bp_gpu() {
  return topology::build_gpu_cluster({.gpu_servers = 12, .rails = 6, .spines = 2});
}

class BlueprintInvariants : public ::testing::TestWithParam<BlueprintCase> {};

TEST_P(BlueprintInvariants, ValidatesAndPortsAreConsistent) {
  const topology::Blueprint bp = GetParam().build();
  bp.validate();

  // ports_used on each node equals its link-endpoint count, and port numbers
  // are unique per node.
  std::vector<int> endpoint_count(bp.nodes().size(), 0);
  std::set<std::pair<int, int>> seen_ports;
  for (const topology::LinkSpec& l : bp.links()) {
    ++endpoint_count[static_cast<size_t>(l.node_a)];
    ++endpoint_count[static_cast<size_t>(l.node_b)];
    EXPECT_TRUE(seen_ports.insert({l.node_a, l.port_a}).second);
    EXPECT_TRUE(seen_ports.insert({l.node_b, l.port_b}).second);
  }
  for (std::size_t i = 0; i < bp.nodes().size(); ++i) {
    EXPECT_EQ(bp.nodes()[i].ports_used, endpoint_count[i]) << "node " << i;
  }
}

TEST_P(BlueprintInvariants, CableRoutesHavePositiveLengthAndValidSegments) {
  const topology::Blueprint bp = GetParam().build();
  for (const topology::LinkSpec& l : bp.links()) {
    EXPECT_GT(l.route.length_m, 0.0);
    const auto& la = bp.node(l.node_a).location;
    const auto& lb = bp.node(l.node_b).location;
    if (la.same_rack(lb)) {
      EXPECT_TRUE(l.route.segments.empty());
    } else {
      EXPECT_FALSE(l.route.segments.empty());
    }
  }
}

TEST_P(BlueprintInvariants, EveryServerIsConnected) {
  const topology::Blueprint bp = GetParam().build();
  const auto adj = bp.adjacency();
  for (std::size_t i = 0; i < bp.nodes().size(); ++i) {
    if (!topology::is_switch(bp.nodes()[i].role)) {
      EXPECT_FALSE(adj[i].empty()) << bp.nodes()[i].name;
    }
  }
}

TEST_P(BlueprintInvariants, MetricsAreFiniteAndInRange) {
  const topology::Blueprint bp = GetParam().build();
  const topology::WiringStats w = topology::compute_wiring_stats(bp);
  EXPECT_EQ(w.in_rack + w.same_row + w.cross_row, w.links);
  EXPECT_GE(w.max_length_m, w.mean_length_m);
  const topology::SelfMaintainability m = topology::compute_self_maintainability(bp);
  for (const double v : {m.reachability, m.occlusion, m.uniformity, m.blast_radius,
                         m.port_density, m.bundling}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_GE(m.score, 0.0);
  EXPECT_LE(m.score, 100.0);
}

TEST_P(BlueprintInvariants, FullFabricIsFullyConnected) {
  sim::Simulator sim;
  const topology::Blueprint bp = GetParam().build();
  net::Network net{bp, net::Network::Config{}, sim};
  sim::RngFactory f{1};
  sim::RngStream rng = f.stream("prop");
  EXPECT_DOUBLE_EQ(net::sampled_pair_connectivity(net, rng, 50), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBuilders, BlueprintInvariants,
    ::testing::Values(BlueprintCase{"fat4", bp_fat4}, BlueprintCase{"fat8", bp_fat8},
                      BlueprintCase{"ls_small", bp_ls_small},
                      BlueprintCase{"ls_wide", bp_ls_wide},
                      BlueprintCase{"jelly", bp_jelly},
                      BlueprintCase{"jelly_dense", bp_jelly_dense},
                      BlueprintCase{"xpander", bp_xpander}, BlueprintCase{"gpu", bp_gpu}),
    [](const auto& pi) { return pi.param.name; });

// ---------- Link state machine properties over the condition space ----------

class LinkStateProperty : public ::testing::TestWithParam<double> {};

TEST_P(LinkStateProperty, StateIsMonotoneInContamination) {
  // Higher contamination never makes the derived state better.
  const double c = GetParam();
  net::Link link;
  link.medium = net::CableMedium::kMpoOptical;
  link.end_a.condition.contamination = c;
  const auto rank = [](net::LinkState s) { return static_cast<int>(s); };
  const net::LinkState at_c = link.derive_state(TimePoint::origin(), true);
  link.end_a.condition.contamination = std::min(1.0, c + 0.25);
  const net::LinkState at_more = link.derive_state(TimePoint::origin(), true);
  EXPECT_GE(rank(at_more), rank(at_c));
}

TEST_P(LinkStateProperty, AdminDownAndDeviceDeathDominateEverything) {
  net::Link link;
  link.end_a.condition.contamination = GetParam();
  link.admin_down = true;
  EXPECT_EQ(link.derive_state(TimePoint::origin(), true), net::LinkState::kDown);
  link.admin_down = false;
  EXPECT_EQ(link.derive_state(TimePoint::origin(), false), net::LinkState::kDown);
}

TEST_P(LinkStateProperty, LossRateOrdersWithSeverity) {
  const double c = GetParam();
  net::Link link;
  link.end_b.condition.contamination = c;
  const net::LinkState s = link.derive_state(TimePoint::origin(), true);
  EXPECT_LE(net::Link::loss_rate(net::LinkState::kUp), net::Link::loss_rate(s));
  EXPECT_LE(net::Link::loss_rate(s), net::Link::loss_rate(net::LinkState::kDown));
}

INSTANTIATE_TEST_SUITE_P(ContaminationSweep, LinkStateProperty,
                         ::testing::Values(0.0, 0.1, 0.3, 0.34, 0.36, 0.5, 0.59, 0.61,
                                           0.8, 1.0));

// ---------- Escalation ladder properties ----------

class EscalationProperty : public ::testing::TestWithParam<int> {};

TEST_P(EscalationProperty, DecisionIsAlwaysLegalForTheMedium) {
  sim::Simulator sim;
  const topology::Blueprint bp = bp_ls_small();
  net::Network net{bp, testutil::short_aoc(), sim};
  maintenance::TicketSystem tickets;
  core::EscalationPolicy policy;

  const int attempts = GetParam();
  for (const net::Link& l : net.links()) {
    maintenance::Ticket t;
    t.id = 0;
    t.link = l.id;
    t.opened = sim.now();
    t.actions_taken = attempts;
    const core::EscalationDecision d = policy.decide(net, tickets, t);
    if (d.kind == maintenance::RepairActionKind::kClean) {
      EXPECT_TRUE(net::is_cleanable(l.medium));
    }
    if (maintenance::is_end_scoped(d.kind)) {
      EXPECT_TRUE(d.end == 0 || d.end == 1);
    }
  }
}

TEST_P(EscalationProperty, StageNeverDecreasesWithMoreAttempts) {
  sim::Simulator sim;
  const topology::Blueprint bp = bp_ls_small();
  net::Network net{bp, testutil::short_aoc(), sim};
  maintenance::TicketSystem tickets;
  core::EscalationPolicy policy;
  maintenance::Ticket t;
  t.id = 0;
  t.link = net::LinkId{0};
  t.opened = sim.now();
  t.actions_taken = GetParam();
  const int s1 = policy.stage_of(tickets, t);
  t.actions_taken += 1;
  EXPECT_GT(policy.stage_of(tickets, t), s1 - 1);
}

INSTANTIATE_TEST_SUITE_P(AttemptSweep, EscalationProperty,
                         ::testing::Range(0, 10));

// ---------- Simulator determinism under chunked execution ----------

class ChunkedExecution : public ::testing::TestWithParam<int> {};

TEST_P(ChunkedExecution, ChunkingDoesNotChangeEventOrder) {
  const int chunks = GetParam();
  auto run = [&](int parts) {
    sim::Simulator sim;
    sim::RngFactory f{99};
    sim::RngStream rng = f.stream("order");
    std::vector<int> order;
    for (int i = 0; i < 200; ++i) {
      sim.schedule_at(TimePoint::origin() +
                          Duration::milliseconds(rng.uniform(0, 10000)),
                      [&order, i] { order.push_back(i); });
    }
    const TimePoint end = TimePoint::origin() + Duration::seconds(11);
    for (int p = 1; p <= parts; ++p) {
      sim.run_until(TimePoint::origin() + (end - TimePoint::origin()) * (static_cast<double>(p) / parts));
    }
    return order;
  };
  EXPECT_EQ(run(1), run(chunks));
}

INSTANTIATE_TEST_SUITE_P(Chunks, ChunkedExecution, ::testing::Values(2, 3, 7, 50));

// ---------- RNG distribution sanity over parameter sweeps ----------

class WeibullProperty : public ::testing::TestWithParam<double> {};

TEST_P(WeibullProperty, SamplesArePositiveAndScaleRoughlyRight) {
  sim::RngFactory f{5};
  sim::RngStream s = f.stream("weibull");
  const double shape = GetParam();
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double v = s.weibull(shape, 100.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  // Mean of Weibull(k, lambda) = lambda * Gamma(1 + 1/k); for k in [0.5, 4]
  // that is within [0.88, 2.0] * lambda.
  EXPECT_GT(sum / n, 50.0);
  EXPECT_LT(sum / n, 250.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, WeibullProperty,
                         ::testing::Values(0.5, 0.8, 1.0, 1.5, 2.0, 4.0));

// ---------- Cascade contact-set properties ----------

TEST(CascadeProperty, FullRouteContactsAreASuperset) {
  sim::Simulator sim;
  const topology::Blueprint bp = bp_ls_wide();
  net::Network net{bp, testutil::short_aoc(), sim};
  fault::Environment env;
  sim::RngFactory f{17};
  fault::FaultInjector injector{net, env, f.stream("inj")};
  fault::CascadeModel cascade{net, env, injector, f.stream("c")};

  for (const net::Link& l : net.links()) {
    const net::DeviceId dev = l.end_a.device;
    fault::Disturbance faceplate{l.id, dev, 1.0, false};
    fault::Disturbance full{l.id, dev, 1.0, true};
    const auto small = cascade.predicted_contacts(faceplate);
    const auto big = cascade.predicted_contacts(full);
    const std::set<net::LinkId> big_set(big.begin(), big.end());
    for (const net::LinkId c : small) {
      EXPECT_TRUE(big_set.contains(c));
      EXPECT_NE(c, l.id);  // never predicts touching itself
    }
  }
}

// ---------- Cost model monotonicity ----------

class CostMonotone : public ::testing::TestWithParam<int> {};

TEST_P(CostMonotone, EachChannelIsMonotone) {
  analysis::CostConfig cfg;
  analysis::CostInputs base;
  base.technician_hours = 10;
  base.robot_busy_hours = 10;
  base.robot_units = 1;
  base.elapsed_years = 0.5;
  base.downtime_link_hours = 10;
  base.impaired_link_hours = 10;
  base.transceivers_replaced = 2;
  base.cables_replaced = 1;
  base.devices_replaced = 1;
  base.overprovisioned_links = 2;
  const double before = analysis::compute_cost(cfg, base).total_usd;

  analysis::CostInputs bumped = base;
  switch (GetParam()) {
    case 0: bumped.technician_hours += 5; break;
    case 1: bumped.robot_busy_hours += 5; break;
    case 2: bumped.robot_units += 1; break;
    case 3: bumped.downtime_link_hours += 5; break;
    case 4: bumped.impaired_link_hours += 5; break;
    case 5: bumped.transceivers_replaced += 1; break;
    case 6: bumped.cables_replaced += 1; break;
    case 7: bumped.devices_replaced += 1; break;
    case 8: bumped.overprovisioned_links += 1; break;
  }
  EXPECT_GT(analysis::compute_cost(cfg, bumped).total_usd, before);
}

INSTANTIATE_TEST_SUITE_P(Channels, CostMonotone, ::testing::Range(0, 9));

}  // namespace
}  // namespace smn
