// Determinism-audit regression: two World instances built from identical
// configs must execute bit-identical event traces (the property every
// differential experiment — L0 vs L3 on the same fault trace — rests on).
// Covers three scenario presets; the full five-preset audit also runs as the
// `determinism_audit` ctest test via `smnctl --audit-determinism`.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "scenario/world.h"
#include "topology/builders.h"

namespace smn {
namespace {

using sim::Duration;

struct Trace {
  std::uint64_t hash;
  std::uint64_t events;
};

Trace run_world(const topology::Blueprint& bp, core::AutomationLevel level,
                std::uint64_t seed) {
  scenario::WorldConfig cfg = scenario::WorldConfig::for_level(level);
  cfg.seed = seed;
  // Accelerate aging hard: the tiny test topologies otherwise see zero faults
  // in a few days, leaving only deterministic periodic events — which would
  // make traces seed-independent and DifferentSeedDifferentTrace vacuous.
  cfg.faults.transceiver_afr = 4.0;
  cfg.faults.gray_rate_per_year = 100.0;
  scenario::World world{bp, cfg};
  world.run_for(Duration::days(4));
  world.check_invariants();
  return {world.simulator().trace_hash(), world.simulator().events_processed()};
}

class DeterminismTest : public testing::TestWithParam<const char*> {
 protected:
  static topology::Blueprint make(const std::string& preset) {
    if (preset == "leaf-spine") {
      return topology::build_leaf_spine({.leaves = 4, .spines = 2, .servers_per_leaf = 2});
    }
    if (preset == "fat-tree") return topology::build_fat_tree({.k = 4});
    return topology::build_gpu_cluster({.gpu_servers = 4, .rails = 4, .spines = 2});
  }
};

TEST_P(DeterminismTest, SameSeedSameTrace) {
  const topology::Blueprint bp = make(GetParam());
  const Trace a = run_world(bp, core::AutomationLevel::kL3_HighAutomation, 7);
  const Trace b = run_world(bp, core::AutomationLevel::kL3_HighAutomation, 7);
  EXPECT_EQ(a.hash, b.hash) << "trace hash diverged on preset " << GetParam();
  EXPECT_EQ(a.events, b.events);
}

TEST_P(DeterminismTest, DifferentSeedDifferentTrace) {
  const topology::Blueprint bp = make(GetParam());
  const Trace a = run_world(bp, core::AutomationLevel::kL3_HighAutomation, 7);
  const Trace b = run_world(bp, core::AutomationLevel::kL3_HighAutomation, 8);
  // Not guaranteed in principle, but a collision here means the seed is not
  // reaching the fault processes — exactly the regression this guards.
  EXPECT_NE(a.hash, b.hash) << "seed had no effect on preset " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Presets, DeterminismTest,
                         testing::Values("leaf-spine", "fat-tree", "gpu"));

TEST(DeterminismTest2, TraceHashIsStableAcrossInProcessRuns) {
  // The acceptance criterion verbatim: a fixed seed's hash is stable across
  // two in-process runs of the same scenario.
  const topology::Blueprint bp =
      topology::build_leaf_spine({.leaves = 3, .spines = 2, .servers_per_leaf = 2});
  const Trace first = run_world(bp, core::AutomationLevel::kL0_Manual, 21);
  const Trace second = run_world(bp, core::AutomationLevel::kL0_Manual, 21);
  EXPECT_EQ(first.hash, second.hash);
  EXPECT_EQ(first.events, second.events);
  EXPECT_GT(first.events, 0u);
}

}  // namespace
}  // namespace smn
