// Determinism-audit regression: two World instances built from identical
// configs must execute bit-identical event traces (the property every
// differential experiment — L0 vs L3 on the same fault trace — rests on).
// Covers three scenario presets; the full five-preset audit also runs as the
// `determinism_audit` ctest test via `smnctl --audit-determinism`.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "analysis/survivability.h"
#include "runner/presets.h"
#include "runner/sweep.h"
#include "scenario/world.h"
#include "topology/builders.h"

namespace smn {
namespace {

using sim::Duration;

struct Trace {
  std::uint64_t hash;
  std::uint64_t events;
};

Trace run_world(const topology::Blueprint& bp, core::AutomationLevel level,
                std::uint64_t seed) {
  scenario::WorldConfig cfg = scenario::WorldConfig::for_level(level);
  cfg.seed = seed;
  // Accelerate aging hard: the tiny test topologies otherwise see zero faults
  // in a few days, leaving only deterministic periodic events — which would
  // make traces seed-independent and DifferentSeedDifferentTrace vacuous.
  cfg.faults.transceiver_afr = 4.0;
  cfg.faults.gray_rate_per_year = 100.0;
  scenario::World world{bp, cfg};
  world.run_for(Duration::days(4));
  world.check_invariants();
  return {world.simulator().trace_hash(), world.simulator().events_processed()};
}

class DeterminismTest : public testing::TestWithParam<const char*> {
 protected:
  static topology::Blueprint make(const std::string& preset) {
    if (preset == "leaf-spine") {
      return topology::build_leaf_spine({.leaves = 4, .spines = 2, .servers_per_leaf = 2});
    }
    if (preset == "fat-tree") return topology::build_fat_tree({.k = 4});
    return topology::build_gpu_cluster({.gpu_servers = 4, .rails = 4, .spines = 2});
  }
};

TEST_P(DeterminismTest, SameSeedSameTrace) {
  const topology::Blueprint bp = make(GetParam());
  const Trace a = run_world(bp, core::AutomationLevel::kL3_HighAutomation, 7);
  const Trace b = run_world(bp, core::AutomationLevel::kL3_HighAutomation, 7);
  EXPECT_EQ(a.hash, b.hash) << "trace hash diverged on preset " << GetParam();
  EXPECT_EQ(a.events, b.events);
}

TEST_P(DeterminismTest, DifferentSeedDifferentTrace) {
  const topology::Blueprint bp = make(GetParam());
  const Trace a = run_world(bp, core::AutomationLevel::kL3_HighAutomation, 7);
  const Trace b = run_world(bp, core::AutomationLevel::kL3_HighAutomation, 8);
  // Not guaranteed in principle, but a collision here means the seed is not
  // reaching the fault processes — exactly the regression this guards.
  EXPECT_NE(a.hash, b.hash) << "seed had no effect on preset " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Presets, DeterminismTest,
                         testing::Values("leaf-spine", "fat-tree", "gpu"));

TEST(DeterminismTest2, TraceHashIsStableAcrossInProcessRuns) {
  // The acceptance criterion verbatim: a fixed seed's hash is stable across
  // two in-process runs of the same scenario.
  const topology::Blueprint bp =
      topology::build_leaf_spine({.leaves = 3, .spines = 2, .servers_per_leaf = 2});
  const Trace first = run_world(bp, core::AutomationLevel::kL0_Manual, 21);
  const Trace second = run_world(bp, core::AutomationLevel::kL0_Manual, 21);
  EXPECT_EQ(first.hash, second.hash);
  EXPECT_EQ(first.events, second.events);
  EXPECT_GT(first.events, 0u);
}

TEST(DeterminismTest2, SurvivabilityConfigIsAPureObserver) {
  // The frontier is computed post-run by the sweep runner; World never reads
  // WorldConfig::survivability, so toggling it must not move a single event.
  const topology::Blueprint bp =
      topology::build_leaf_spine({.leaves = 4, .spines = 2, .servers_per_leaf = 2});
  scenario::WorldConfig base = scenario::WorldConfig::for_level(
      core::AutomationLevel::kL3_HighAutomation);
  base.seed = 11;
  base.faults.transceiver_afr = 4.0;
  scenario::WorldConfig with = base;
  with.survivability.enabled = true;
  with.survivability.orderings = 32;
  with.survivability.seed = 99;
  scenario::World off{bp, base};
  scenario::World on{bp, with};
  off.run_for(Duration::days(4));
  on.run_for(Duration::days(4));
  EXPECT_EQ(off.simulator().trace_hash(), on.simulator().trace_hash());
  EXPECT_EQ(off.simulator().events_processed(), on.simulator().events_processed());
}

TEST(DeterminismTest2, SurvivabilityFrontierHashIsStableAcrossEngines) {
  // Two engine instances over the same blueprint must agree bit-for-bit —
  // the in-process version of --audit-determinism's survivability dimension.
  const topology::Blueprint bp = topology::build_fat_tree({.k = 4});
  analysis::SurvivabilityConfig cfg;
  cfg.enabled = true;
  cfg.orderings = 8;
  cfg.seed = 3;
  analysis::SurvivabilityFrontier first{bp};
  analysis::SurvivabilityFrontier second{bp};
  for (const analysis::FailureMode mode :
       {analysis::FailureMode::kLinks, analysis::FailureMode::kSwitches}) {
    cfg.mode = mode;
    const analysis::FrontierResult a = first.compute(cfg);
    const analysis::FrontierResult b = second.compute(cfg);
    EXPECT_EQ(a.hash, b.hash) << analysis::to_string(mode);
    EXPECT_EQ(a.largest_component.mean, b.largest_component.mean);
    EXPECT_EQ(a.bisection.ci95, b.bisection.ci95);
  }
}

TEST(DeterminismTest2, SurvivabilityReplicateHashIsAFunctionOfCellAndSeed) {
  // Same (cell, seed) -> same frontier hash across independent run_replicate
  // calls; a different replicate seed must derive different orderings.
  const runner::SweepSpec spec =
      runner::make_sweep("quick", sim::Duration::days(1), /*first_seed=*/5, /*seeds=*/1);
  runner::CellSpec cell = spec.cells[0];
  cell.config.survivability.enabled = true;
  cell.config.survivability.orderings = 8;
  const runner::ReplicateResult a =
      runner::SweepRunner::run_replicate(cell, 0, 5, spec.duration);
  const runner::ReplicateResult b =
      runner::SweepRunner::run_replicate(cell, 0, 5, spec.duration);
  const runner::ReplicateResult c =
      runner::SweepRunner::run_replicate(cell, 0, 6, spec.duration);
  ASSERT_TRUE(a.survivability.present());
  EXPECT_EQ(a.survivability.hash, b.survivability.hash);
  EXPECT_EQ(a.metrics_hash, b.metrics_hash);
  EXPECT_NE(a.survivability.hash, c.survivability.hash);
}

}  // namespace
}  // namespace smn
