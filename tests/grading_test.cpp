// Tests for end-face imaging and IEC-style cleanliness grading.
#include <gtest/gtest.h>

#include "robotics/grading.h"

namespace smn::robotics {
namespace {

TEST(Grading, GradeRulesOrderBySeverity) {
  CoreScan pristine;
  EXPECT_EQ(EndFaceImager::grade_core(pristine), CleanlinessGrade::kA);

  CoreScan light;
  light.core_zone_defects = 1;
  light.cladding_defects = 4;
  EXPECT_EQ(EndFaceImager::grade_core(light), CleanlinessGrade::kB);

  CoreScan moderate;
  moderate.core_zone_defects = 3;
  moderate.cladding_defects = 10;
  EXPECT_EQ(EndFaceImager::grade_core(moderate), CleanlinessGrade::kC);

  CoreScan filthy;
  filthy.core_zone_defects = 8;
  filthy.cladding_defects = 30;
  EXPECT_EQ(EndFaceImager::grade_core(filthy), CleanlinessGrade::kD);

  CoreScan scratched;
  scratched.core_zone_defects = 1;
  scratched.worst_scratch_um = 5.0;
  EXPECT_EQ(EndFaceImager::grade_core(scratched), CleanlinessGrade::kD);
}

TEST(Grading, PassThresholdsDependOnFiberType) {
  EXPECT_TRUE(EndFaceImager::grade_passes(CleanlinessGrade::kB, /*single_mode=*/true));
  EXPECT_FALSE(EndFaceImager::grade_passes(CleanlinessGrade::kC, true));
  EXPECT_TRUE(EndFaceImager::grade_passes(CleanlinessGrade::kC, /*single_mode=*/false));
  EXPECT_FALSE(EndFaceImager::grade_passes(CleanlinessGrade::kD, false));
}

TEST(Grading, CleanFaceScansClean) {
  EndFaceImager imager;
  sim::RngFactory rngs{91};
  sim::RngStream rng = rngs.stream("scan");
  const EndFaceScan scan = imager.scan(rng, 0.0, 8);
  EXPECT_EQ(scan.cores.size(), 8u);
  EXPECT_EQ(scan.worst_grade, CleanlinessGrade::kA);
  EXPECT_DOUBLE_EQ(scan.contamination_estimate, 0.0);
  EXPECT_TRUE(scan.passes(true));
}

TEST(Grading, DirtyFaceFailsInspection) {
  EndFaceImager imager;
  sim::RngFactory rngs{91};
  sim::RngStream rng = rngs.stream("scan");
  int fails = 0;
  for (int i = 0; i < 50; ++i) {
    const EndFaceScan scan = imager.scan(rng, 0.9, 8);
    if (!scan.passes(true)) ++fails;
  }
  EXPECT_GT(fails, 45);  // heavy dirt almost always rejects
}

TEST(Grading, EstimateTracksTruthMonotonically) {
  EndFaceImager imager;
  sim::RngFactory rngs{92};
  sim::RngStream rng = rngs.stream("scan");
  double prev = -1.0;
  for (const double truth : {0.0, 0.2, 0.5, 0.9}) {
    double mean = 0;
    for (int i = 0; i < 200; ++i) {
      mean += imager.scan(rng, truth, 8).contamination_estimate / 200.0;
    }
    EXPECT_GT(mean, prev);
    prev = mean;
  }
}

TEST(Grading, SingleCoreLcScans) {
  EndFaceImager imager;
  sim::RngFactory rngs{93};
  sim::RngStream rng = rngs.stream("scan");
  const EndFaceScan scan = imager.scan(rng, 0.3, 1);
  EXPECT_EQ(scan.cores.size(), 1u);
}

}  // namespace
}  // namespace smn::robotics
