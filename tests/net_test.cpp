// Tests for the network layer: hardware assignment, the link state machine,
// observers, and routing queries.
#include <gtest/gtest.h>

#include "net/link.h"
#include "net/network.h"
#include "net/routing.h"
#include "net/transceiver.h"
#include "sim/event_queue.h"
#include "topology/builders.h"

namespace smn::net {
namespace {

using topology::NodeRole;

struct NetFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 3, .uplinks_per_spine = 2});
  Network net{bp, Network::Config{}, sim};
};

TEST_F(NetFixture, AllLinksStartUp) {
  EXPECT_EQ(net.count_links(LinkState::kUp), net.links().size());
  EXPECT_EQ(net.count_links(LinkState::kDown), 0u);
}

TEST_F(NetFixture, MediumAssignmentFollowsLength) {
  for (const Link& l : net.links()) {
    if (l.length_m <= 3.0) {
      EXPECT_EQ(l.medium, CableMedium::kDac) << "len " << l.length_m;
    } else if (l.length_m > 30.0) {
      EXPECT_TRUE(l.medium == CableMedium::kLcOptical || l.medium == CableMedium::kMpoOptical);
      // 400G uplinks get multi-core MPO.
      if (l.capacity_gbps > 100.0) {
        EXPECT_EQ(l.medium, CableMedium::kMpoOptical);
      }
    }
  }
}

TEST_F(NetFixture, ServerLinksAreInRackDac) {
  for (const DeviceId s : net.servers()) {
    for (const LinkId lid : net.links_at(s)) {
      EXPECT_EQ(net.link(lid).medium, CableMedium::kDac);
    }
  }
}

TEST_F(NetFixture, MpoCoreCountMatchesCapacity) {
  for (const Link& l : net.links()) {
    if (l.medium == CableMedium::kMpoOptical) {
      EXPECT_EQ(l.cores_per_end(), 4) << "400G -> 4 cores";
    } else {
      EXPECT_EQ(l.cores_per_end(), 1);
    }
  }
}

TEST_F(NetFixture, UnseatingTransceiverDownsLink) {
  Link& l = net.link_mut(LinkId{0});
  l.end_a.condition.transceiver_seated = false;
  EXPECT_EQ(net.refresh_link(l.id), LinkState::kDown);
  l.end_a.condition.transceiver_seated = true;
  EXPECT_EQ(net.refresh_link(l.id), LinkState::kUp);
}

TEST_F(NetFixture, ContaminationDegradesThenFlaps) {
  Link& l = net.link_mut(LinkId{0});
  l.end_b.condition.contamination = 0.40;
  EXPECT_EQ(net.refresh_link(l.id), LinkState::kDegraded);
  l.end_b.condition.contamination = 0.70;
  EXPECT_EQ(net.refresh_link(l.id), LinkState::kFlapping);
  l.end_b.condition.contamination = 0.0;
  EXPECT_EQ(net.refresh_link(l.id), LinkState::kUp);
}

TEST_F(NetFixture, GrayEpisodeFlapsUntilExpiry) {
  Link& l = net.link_mut(LinkId{0});
  l.gray_until = sim.now() + sim::Duration::minutes(10);
  EXPECT_EQ(net.refresh_link(l.id), LinkState::kFlapping);
  sim.run_until(sim.now() + sim::Duration::minutes(11));
  EXPECT_EQ(net.refresh_link(l.id), LinkState::kUp);
}

TEST_F(NetFixture, AdminDownMasksEverything) {
  Link& l = net.link_mut(LinkId{0});
  l.admin_down = true;
  EXPECT_EQ(net.refresh_link(l.id), LinkState::kDown);
  l.admin_down = false;
  EXPECT_EQ(net.refresh_link(l.id), LinkState::kUp);
}

TEST_F(NetFixture, DeviceFailureDownsAllItsLinks) {
  const DeviceId spine = net.devices_with_role(NodeRole::kSpineSwitch).front();
  const std::size_t expected = net.links_at(spine).size();
  net.set_device_health(spine, false);
  EXPECT_EQ(net.count_links(LinkState::kDown), expected);
  net.set_device_health(spine, true);
  EXPECT_EQ(net.count_links(LinkState::kDown), 0u);
}

TEST_F(NetFixture, ObserverSeesTransitions) {
  int calls = 0;
  LinkState seen_old = LinkState::kDown, seen_new = LinkState::kUp;
  net.subscribe([&](const Link&, LinkState o, LinkState n) {
    ++calls;
    seen_old = o;
    seen_new = n;
  });
  Link& l = net.link_mut(LinkId{3});
  l.cable.intact = false;
  net.refresh_link(l.id);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_old, LinkState::kUp);
  EXPECT_EQ(seen_new, LinkState::kDown);
  net.refresh_link(l.id);  // no change, no callback
  EXPECT_EQ(calls, 1);
}

TEST_F(NetFixture, ShortestPathServerToServerViaLeafSpine) {
  const auto servers = net.servers();
  const DeviceId a = servers[0];
  const DeviceId b = servers.back();
  const auto path = shortest_path(net, a, b);
  ASSERT_FALSE(path.empty());
  // Different leaves: server-leaf-spine-leaf-server = 5 hops.
  EXPECT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), a);
  EXPECT_EQ(path.back(), b);
}

TEST_F(NetFixture, PathSurvivesSingleSpineFailure) {
  const auto servers = net.servers();
  net.set_device_health(net.devices_with_role(NodeRole::kSpineSwitch).front(), false);
  EXPECT_TRUE(path_available(net, servers[0], servers.back()));
}

TEST_F(NetFixture, ServerIsolatedWhenItsAccessLinkDies) {
  const DeviceId srv = net.servers().front();
  const LinkId access = net.links_at(srv).front();
  net.link_mut(access).cable.intact = false;
  net.refresh_link(access);
  EXPECT_FALSE(path_available(net, srv, net.servers().back()));
  sim::RngFactory f{1};
  sim::RngStream rng = f.stream("conn");
  EXPECT_LT(sampled_pair_connectivity(net, rng, 200), 1.0);
}

TEST_F(NetFixture, PathPolicyExcludesFlappingWhenAsked) {
  const DeviceId srv = net.servers().front();
  const LinkId access = net.links_at(srv).front();
  net.link_mut(access).end_a.condition.contamination = 0.9;
  net.refresh_link(access);
  EXPECT_TRUE(path_available(net, srv, net.servers().back()));
  const PathPolicy strict{.use_flapping = false, .use_degraded = true};
  EXPECT_FALSE(path_available(net, srv, net.servers().back(), strict));
}

TEST_F(NetFixture, LiveParallelLinksCountsUplinks) {
  const DeviceId leaf = net.devices_with_role(NodeRole::kTorSwitch).front();
  const DeviceId spine = net.devices_with_role(NodeRole::kSpineSwitch).front();
  EXPECT_EQ(live_parallel_links(net, leaf, spine), 2);
  const auto lids = net.links_between(leaf, spine);
  net.link_mut(lids[0]).cable.intact = false;
  net.refresh_link(lids[0]);
  EXPECT_EQ(live_parallel_links(net, leaf, spine), 1);
}

TEST_F(NetFixture, LiveLinkFraction) {
  const DeviceId leaf = net.devices_with_role(NodeRole::kTorSwitch).front();
  const double before = live_link_fraction(net, leaf);
  EXPECT_DOUBLE_EQ(before, 1.0);
  const LinkId lid = net.links_at(leaf).front();
  net.link_mut(lid).cable.intact = false;
  net.refresh_link(lid);
  EXPECT_LT(live_link_fraction(net, leaf), 1.0);
}

TEST_F(NetFixture, PathLossReflectsSickestHop) {
  const auto servers = net.servers();
  const auto path = shortest_path(net, servers[0], servers.back());
  ASSERT_FALSE(path.empty());
  EXPECT_DOUBLE_EQ(*path_loss(net, path), Link::loss_rate(LinkState::kUp));
  const LinkId access = net.links_at(servers[0]).front();
  net.link_mut(access).end_a.condition.contamination = 0.9;
  net.refresh_link(access);
  EXPECT_DOUBLE_EQ(*path_loss(net, path), Link::loss_rate(LinkState::kFlapping));
}

TEST(TailLatency, MonotoneInLoss) {
  EXPECT_NEAR(tail_latency_factor(0.0), 1.0, 1e-9);
  EXPECT_LT(tail_latency_factor(1e-6), tail_latency_factor(1e-3));
  EXPECT_LT(tail_latency_factor(1e-3), tail_latency_factor(1e-1));
  EXPECT_LE(tail_latency_factor(0.5), 100.0);
}

TEST(Transceiver, IntegratedAndCleanableArePartition) {
  for (const CableMedium m :
       {CableMedium::kDac, CableMedium::kAec, CableMedium::kAoc, CableMedium::kLcOptical,
        CableMedium::kMpoOptical}) {
    EXPECT_NE(is_integrated(m), is_cleanable(m));
  }
}

TEST(Transceiver, EndConditionUsable) {
  EndCondition c;
  EXPECT_TRUE(c.usable());
  c.transceiver_seated = false;
  EXPECT_FALSE(c.usable());
  c.transceiver_seated = true;
  c.transceiver_healthy = false;
  EXPECT_FALSE(c.usable());
  c.transceiver_healthy = true;
  c.transceiver_present = false;
  EXPECT_FALSE(c.usable());
}

TEST(Transceiver, DescribeMentionsFormFactor) {
  TransceiverModel m;
  m.form_factor = FormFactor::kQsfpDd;
  m.angled_end_face = true;
  const std::string s = m.describe();
  EXPECT_NE(s.find("QSFP-DD"), std::string::npos);
  EXPECT_NE(s.find("APC"), std::string::npos);
}

TEST(NetworkDiversity, SkuCountGrowsWithVendors) {
  sim::Simulator sim;
  const topology::Blueprint bp = topology::build_fat_tree({.k = 4});
  Network::Config one;
  one.vendor_count = 1;
  Network::Config many;
  many.vendor_count = 8;
  Network n1{bp, one, sim};
  Network n8{bp, many, sim};
  EXPECT_LE(n1.transceiver_sku_count(), n8.transceiver_sku_count());
}

TEST(NetworkOnFatTree, FullBisectionPathsExist) {
  sim::Simulator sim;
  const topology::Blueprint bp = topology::build_fat_tree({.k = 4});
  Network net{bp, Network::Config{}, sim};
  const auto servers = net.servers();
  sim::RngFactory f{2};
  sim::RngStream rng = f.stream("conn");
  EXPECT_DOUBLE_EQ(sampled_pair_connectivity(net, rng, 100), 1.0);
}

}  // namespace
}  // namespace smn::net
