// Shared helpers for the test suite.
#pragma once

#include "net/network.h"

namespace smn::testutil {

/// Network config with a short AOC cutoff so that the small test topologies
/// (whose uplinks are ~10 m) get *separate* optical transceivers + MPO fiber
/// — the cleanable medium most of the repair ladder operates on.
inline net::Network::Config short_aoc() {
  net::Network::Config cfg;
  cfg.aoc_max_m = 5.0;
  return cfg;
}

}  // namespace smn::testutil
