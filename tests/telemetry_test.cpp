// Tests for the detection engine (debounce, flap windows, false positives,
// self-clear) and the logistic failure predictor.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "telemetry/monitor.h"
#include "telemetry/predictor.h"
#include "topology/builders.h"

namespace smn::telemetry {
namespace {

using sim::Duration;
using sim::TimePoint;

struct MonitorFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp =
      topology::build_leaf_spine({.leaves = 2, .spines = 2, .servers_per_leaf = 2});
  net::Network net{bp, net::Network::Config{}, sim};
  sim::RngFactory rngs{5};
  DetectionEngine::Config cfg;
  std::vector<Detection> seen;
  std::unique_ptr<DetectionEngine> owned_engine;

  // The engine owns immovable fom members (they hold references back into
  // the engine), so the fixture heap-allocates and hands out a reference.
  DetectionEngine& make_engine() {
    cfg.false_positive_per_year = 0.0;  // deterministic unless a test opts in
    owned_engine = std::make_unique<DetectionEngine>(net, rngs.stream("det"), cfg);
    owned_engine->subscribe([this](const Detection& d) { seen.push_back(d); });
    return *owned_engine;
  }

  void hard_down(net::LinkId id) {
    net.link_mut(id).cable.intact = false;
    net.refresh_link(id);
  }
};

TEST_F(MonitorFixture, DownLinkDetectedAfterDebounce) {
  DetectionEngine& engine = make_engine();
  engine.start();
  hard_down(net::LinkId{0});
  sim.run_until(TimePoint::origin() + Duration::minutes(3));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].kind, IssueKind::kDown);
  EXPECT_TRUE(seen[0].genuine);
  EXPECT_TRUE(engine.open(net::LinkId{0}));
}

TEST_F(MonitorFixture, NoDuplicateDetectionWhileOpen) {
  DetectionEngine& engine = make_engine();
  engine.start();
  hard_down(net::LinkId{0});
  sim.run_until(TimePoint::origin() + Duration::hours(5));
  EXPECT_EQ(seen.size(), 1u);
}

TEST_F(MonitorFixture, ClearReArmsDetection) {
  DetectionEngine& engine = make_engine();
  engine.start();
  hard_down(net::LinkId{0});
  sim.run_until(TimePoint::origin() + Duration::minutes(5));
  ASSERT_EQ(seen.size(), 1u);
  engine.clear(net::LinkId{0});
  sim.run_until(TimePoint::origin() + Duration::minutes(10));
  EXPECT_EQ(seen.size(), 2u);  // still down, detected again
}

TEST_F(MonitorFixture, DegradedUsesLongerDebounce) {
  DetectionEngine& engine = make_engine();
  engine.start();
  net.link_mut(net::LinkId{0}).end_a.condition.contamination = 0.45;
  net.refresh_link(net::LinkId{0});
  sim.run_until(TimePoint::origin() + Duration::minutes(10));
  EXPECT_TRUE(seen.empty());  // below 15-minute degraded debounce
  sim.run_until(TimePoint::origin() + Duration::minutes(20));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].kind, IssueKind::kDegraded);
}

TEST_F(MonitorFixture, FlapCountTriggersDetection) {
  DetectionEngine& engine = make_engine();
  engine.start();
  net::Link& l = net.link_mut(net::LinkId{0});
  // Three short gray episodes inside the 30-minute window.
  for (int i = 0; i < 3; ++i) {
    sim.run_until(TimePoint::origin() + Duration::minutes(1 + 4 * i));
    l.gray_until = sim.now() + Duration::minutes(2);
    net.refresh_link(l.id);
    sim.run_until(sim.now() + Duration::minutes(2));
    net.refresh_link(l.id);
  }
  sim.run_until(sim.now() + Duration::minutes(2));
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen[0].kind, IssueKind::kFlapping);
  EXPECT_EQ(engine.total_flap_transitions(net::LinkId{0}), 3);
}

TEST_F(MonitorFixture, PersistentFlappingDetectedByDwell) {
  DetectionEngine& engine = make_engine();
  engine.start();
  net::Link& l = net.link_mut(net::LinkId{0});
  l.gray_until = sim.now() + Duration::hours(2);  // one long episode
  net.refresh_link(l.id);
  sim.run_until(TimePoint::origin() + Duration::minutes(3));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].kind, IssueKind::kFlapping);
}

TEST_F(MonitorFixture, SelfClearReArmsAfterRecovery) {
  DetectionEngine& engine = make_engine();
  engine.start();
  net::Link& l = net.link_mut(net::LinkId{0});
  l.gray_until = sim.now() + Duration::minutes(5);
  net.refresh_link(l.id);
  sim.run_until(TimePoint::origin() + Duration::minutes(4));
  ASSERT_EQ(seen.size(), 1u);           // detected while flapping
  sim.run_until(TimePoint::origin() + Duration::minutes(6));
  net.refresh_link(l.id);               // recovers
  sim.run_until(TimePoint::origin() + Duration::hours(2));
  EXPECT_FALSE(engine.open(net::LinkId{0}));  // self-cleared after 60 min up
}

TEST_F(MonitorFixture, FalsePositivesArriveAtConfiguredRate) {
  cfg.false_positive_per_year = 50.0;  // absurdly high to get counts fast
  DetectionEngine engine{net, rngs.stream("fp"), cfg};
  int false_count = 0;
  engine.subscribe([&](const Detection& d) {
    if (!d.genuine) ++false_count;
  });
  engine.start();
  sim.run_until(TimePoint::origin() + Duration::days(10));
  EXPECT_GT(false_count, 0);
  EXPECT_EQ(engine.false_positive_count(), static_cast<std::size_t>(false_count));
}

TEST_F(MonitorFixture, AdminDownIsNotAFailure) {
  DetectionEngine& engine = make_engine();
  engine.start();
  net.link_mut(net::LinkId{0}).admin_down = true;
  net.refresh_link(net::LinkId{0});
  sim.run_until(TimePoint::origin() + Duration::hours(1));
  EXPECT_TRUE(seen.empty());
}

TEST_F(MonitorFixture, TimeInStateAccounting) {
  DetectionEngine& engine = make_engine();
  engine.start();
  hard_down(net::LinkId{0});
  sim.run_until(TimePoint::origin() + Duration::hours(2));
  net.link_mut(net::LinkId{0}).cable.intact = true;
  net.refresh_link(net::LinkId{0});
  sim.run_until(TimePoint::origin() + Duration::hours(3));
  EXPECT_NEAR(engine.time_in(net::LinkId{0}, net::LinkState::kDown).to_hours(), 2.0, 0.01);
  EXPECT_NEAR(engine.time_in(net::LinkId{0}, net::LinkState::kUp).to_hours(), 1.0, 0.01);
}

// --- predictor ---

FeatureVector failing_features(sim::RngStream& rng) {
  FeatureVector f;
  f.flaps_recent = rng.uniform(0.5, 1.0);
  f.degraded_fraction = rng.uniform(0.3, 0.9);
  f.detections_recent = rng.uniform(0.4, 1.0);
  f.repair_count = rng.uniform(0.2, 0.8);
  f.age = rng.uniform(0.0, 1.0);
  f.inspection_grade = rng.uniform(0.4, 0.9);
  return f;
}

FeatureVector healthy_features(sim::RngStream& rng) {
  FeatureVector f;
  f.flaps_recent = rng.uniform(0.0, 0.1);
  f.degraded_fraction = rng.uniform(0.0, 0.05);
  f.detections_recent = rng.uniform(0.0, 0.1);
  f.repair_count = rng.uniform(0.0, 0.2);
  f.age = rng.uniform(0.0, 1.0);
  f.inspection_grade = rng.uniform(0.0, 0.15);
  return f;
}

TEST(Predictor, LearnsSeparableData) {
  sim::RngFactory rngs{13};
  sim::RngStream rng = rngs.stream("data");
  std::vector<TrainingExample> train_set;
  for (int i = 0; i < 400; ++i) {
    train_set.push_back({failing_features(rng), true});
    train_set.push_back({healthy_features(rng), false});
  }
  LogisticPredictor model;
  sim::RngStream train_rng = rngs.stream("train");
  model.train(train_set, train_rng);

  std::vector<TrainingExample> test_set;
  for (int i = 0; i < 100; ++i) {
    test_set.push_back({failing_features(rng), true});
    test_set.push_back({healthy_features(rng), false});
  }
  const EvaluationResult r = model.evaluate(test_set, 0.5);
  EXPECT_GT(r.precision, 0.9);
  EXPECT_GT(r.recall, 0.9);
  EXPECT_GT(r.f1, 0.9);
}

TEST(Predictor, ThresholdTradesPrecisionForRecall) {
  sim::RngFactory rngs{14};
  sim::RngStream rng = rngs.stream("data");
  std::vector<TrainingExample> examples;
  for (int i = 0; i < 300; ++i) {
    examples.push_back({failing_features(rng), rng.bernoulli(0.8)});
    examples.push_back({healthy_features(rng), rng.bernoulli(0.1)});
  }
  LogisticPredictor model;
  sim::RngStream train_rng = rngs.stream("train");
  model.train(examples, train_rng);
  const EvaluationResult strict = model.evaluate(examples, 0.8);
  const EvaluationResult loose = model.evaluate(examples, 0.2);
  EXPECT_GE(loose.recall, strict.recall);
  EXPECT_GE(loose.predicted_positive, strict.predicted_positive);
}

TEST(Predictor, UntrainedPredictsHalf) {
  LogisticPredictor model;
  EXPECT_DOUBLE_EQ(model.predict(FeatureVector{}), 0.5);
}

TEST(Predictor, EmptyTrainingIsANoOp) {
  LogisticPredictor model;
  sim::RngFactory rngs{1};
  sim::RngStream rng = rngs.stream("t");
  model.train({}, rng);
  EXPECT_DOUBLE_EQ(model.predict(FeatureVector{}), 0.5);
}

TEST(Predictor, EvaluateOnEmptySetIsZero) {
  LogisticPredictor model;
  const EvaluationResult r = model.evaluate({}, 0.5);
  EXPECT_EQ(r.positives, 0u);
  EXPECT_DOUBLE_EQ(r.f1, 0.0);
}

}  // namespace
}  // namespace smn::telemetry
