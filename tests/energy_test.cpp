// Tests for the link-parking EnergyManager.
#include <gtest/gtest.h>

#include "core/energy.h"
#include "test_util.h"
#include "topology/builders.h"

namespace smn::core {
namespace {

using sim::Duration;
using sim::TimePoint;

struct EnergyFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 2, .uplinks_per_spine = 3});
  net::Network net{bp, testutil::short_aoc(), sim};

  EnergyManager::Config config() {
    EnergyManager::Config cfg;
    cfg.check_interval = Duration::minutes(15);
    return cfg;
  }

  /// Advances the clock into the overnight low-utilization window.
  void go_to_low_window() { sim.run_until(TimePoint::origin() + Duration::hours(3)); }
  void go_to_peak() { sim.run_until(sim.now() + Duration::hours(12)); }
};

TEST_F(EnergyFixture, ParksSurplusMembersOnlyInLowWindows) {
  EnergyManager mgr{net, config()};
  go_to_low_window();
  mgr.step_once();
  // 4 leaves x 2 spines x 3 uplinks: 2 of each 3-group parked.
  EXPECT_EQ(mgr.parked_count(), 16u);
  for (const net::Link& l : net.links()) {
    if (mgr.parked(l.id)) {
      EXPECT_EQ(l.state, net::LinkState::kDown);
    }
  }
  // Every group keeps a live member.
  const auto leaves = net.devices_with_role(topology::NodeRole::kTorSwitch);
  const auto spines = net.devices_with_role(topology::NodeRole::kSpineSwitch);
  for (const net::DeviceId leaf : leaves) {
    for (const net::DeviceId spine : spines) {
      int live = 0;
      for (const net::LinkId m : net.links_between(leaf, spine)) {
        if (net.link(m).state != net::LinkState::kDown) ++live;
      }
      EXPECT_GE(live, 1);
    }
  }
}

TEST_F(EnergyFixture, UnparksAtPeak) {
  EnergyManager mgr{net, config()};
  go_to_low_window();
  mgr.step_once();
  ASSERT_GT(mgr.parked_count(), 0u);
  go_to_peak();
  mgr.step_once();
  EXPECT_EQ(mgr.parked_count(), 0u);
  EXPECT_EQ(net.count_links(net::LinkState::kDown), 0u);
}

TEST_F(EnergyFixture, EmergencyUnparkOnSiblingFailure) {
  EnergyManager mgr{net, config()};
  go_to_low_window();
  mgr.step_once();
  const auto leaves = net.devices_with_role(topology::NodeRole::kTorSwitch);
  const auto spines = net.devices_with_role(topology::NodeRole::kSpineSwitch);
  const auto members = net.links_between(leaves[0], spines[0]);
  // Find the live member and kill it.
  for (const net::LinkId m : members) {
    if (net.link(m).state != net::LinkState::kDown) {
      net.link_mut(m).cable.intact = false;
      net.refresh_link(m);
      break;
    }
  }
  EXPECT_GE(mgr.emergency_unparks(), 1u);
  int live = 0;
  for (const net::LinkId m : members) {
    if (net.link(m).state != net::LinkState::kDown) ++live;
  }
  EXPECT_GE(live, 1);  // a parked sibling woke up to cover
}

TEST_F(EnergyFixture, AccountsParkedLinkHours) {
  EnergyManager mgr{net, config()};
  go_to_low_window();
  mgr.step_once();
  const std::size_t parked = mgr.parked_count();
  sim.run_until(sim.now() + Duration::hours(2));
  EXPECT_NEAR(mgr.parked_link_hours(), static_cast<double>(parked) * 2.0, 0.01);
  EXPECT_GT(mgr.energy_saved_kwh(), 0.0);
}

TEST_F(EnergyFixture, PeriodicLoopFollowsTheDiurnalCycle) {
  EnergyManager mgr{net, config()};
  mgr.start();
  sim.run_until(TimePoint::origin() + Duration::hours(4));  // overnight
  EXPECT_GT(mgr.parked_count(), 0u);
  sim.run_until(TimePoint::origin() + Duration::hours(15));  // peak
  EXPECT_EQ(mgr.parked_count(), 0u);
  sim.run_until(TimePoint::origin() + Duration::hours(27));  // next night
  EXPECT_GT(mgr.parked_count(), 0u);
}

TEST_F(EnergyFixture, DisabledManagerDoesNothing) {
  EnergyManager::Config cfg = config();
  cfg.enabled = false;
  EnergyManager mgr{net, cfg};
  mgr.start();
  sim.run_until(TimePoint::origin() + Duration::hours(4));
  EXPECT_EQ(mgr.parked_count(), 0u);
}

TEST_F(EnergyFixture, NeverParksSingleMemberGroupsOrAccessLinks) {
  sim::Simulator sim2;
  const topology::Blueprint thin = topology::build_leaf_spine(
      {.leaves = 2, .spines = 2, .servers_per_leaf = 2, .uplinks_per_spine = 1});
  net::Network net2{thin, testutil::short_aoc(), sim2};
  EnergyManager mgr{net2, config()};
  sim2.run_until(TimePoint::origin() + Duration::hours(3));
  mgr.step_once();
  EXPECT_EQ(mgr.parked_count(), 0u);
}

}  // namespace
}  // namespace smn::core
