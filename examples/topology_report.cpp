// Computes the self-maintainability metric (§4: "perhaps we can create a
// metric for self-maintainability of a network design?") for four topologies
// at matched server count and prints the comparison.
//
//   ./topology_report
#include <iostream>

#include "analysis/report.h"
#include "topology/builders.h"
#include "topology/metrics.h"

int main() {
  using namespace smn;
  using analysis::Table;

  struct Entry {
    const char* name;
    topology::Blueprint bp;
  };
  // All four sized for 256 servers.
  std::vector<Entry> entries;
  entries.push_back({"fat-tree k=8 (+pods)", topology::build_fat_tree({.k = 8})});
  entries.push_back({"leaf-spine 64x16",
                     topology::build_leaf_spine({.leaves = 64,
                                                 .spines = 16,
                                                 .servers_per_leaf = 4})});
  entries.push_back({"jellyfish d=16",
                     topology::build_jellyfish({.switches = 64,
                                                .network_degree = 16,
                                                .servers_per_switch = 4,
                                                .seed = 3})});
  entries.push_back({"xpander d=15 L=4",
                     topology::build_xpander({.network_degree = 15,
                                              .lift = 4,
                                              .servers_per_switch = 4,
                                              .seed = 3})});

  Table wiring{{"topology", "servers", "links", "cable km", "SKUs", "max tray",
                "loom pairs", "adjacency"}};
  Table scores{{"topology", "reach", "occlusion", "uniformity", "blast", "ports",
                "bundling", "SCORE"}};
  for (const Entry& e : entries) {
    const topology::WiringStats w = topology::compute_wiring_stats(e.bp);
    const topology::SelfMaintainability m = topology::compute_self_maintainability(e.bp);
    wiring.add_row({e.name, Table::num(e.bp.server_count()), Table::num(w.links),
                    Table::num(w.total_length_m / 1000.0, 2), Table::num(w.length_classes),
                    Table::num(w.max_tray_occupancy, 0), Table::num(w.distinct_rack_pairs),
                    Table::num(w.mean_adjacent_cables, 1)});
    scores.add_row({e.name, Table::num(m.reachability), Table::num(m.occlusion),
                    Table::num(m.uniformity), Table::num(m.blast_radius),
                    Table::num(m.port_density), Table::num(m.bundling),
                    Table::num(m.score, 1)});
  }

  std::cout << "Wiring complexity (256 servers each):\n";
  wiring.print(std::cout);
  std::cout << "\nSelf-maintainability sub-scores (1.0 = easiest for robots):\n";
  scores.print(std::cout);
  std::cout << "\nReading: structured fabrics bundle their uplinks into repeated\n"
               "rack-pair looms; random expanders cannot, which is the paper's\n"
               "deployability argument for why they stay undeployed (§4).\n";
  return 0;
}
