// Quickstart: build a small leaf-spine fabric, inject a flapping link, and
// let a Level-3 self-maintaining controller repair it. Prints the ticket
// timeline so you can watch detection -> escalation ladder -> robot repair.
//
//   ./quickstart [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "scenario/world.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace smn;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. A topology: 8 leaves x 4 spines, 16 servers per leaf.
  const topology::Blueprint bp = topology::build_leaf_spine({
      .leaves = 8,
      .spines = 4,
      .servers_per_leaf = 16,
      .uplinks_per_spine = 2,
  });
  std::printf("topology: %s — %zu devices, %zu links\n", bp.name().c_str(),
              bp.nodes().size(), bp.links().size());

  // 2. A Level-3 (high automation) world: robots repair, humans handle
  //    escalations only.
  scenario::WorldConfig cfg =
      scenario::WorldConfig::for_level(core::AutomationLevel::kL3_HighAutomation);
  cfg.seed = seed;
  cfg.network.aoc_max_m = 5.0;  // long uplinks use separate MPO optics
  scenario::World world{bp, cfg};
  world.start();

  // 3. Contaminate one optical uplink end-face until it flaps (the §1 "dirt
  //    on an end-face" scenario).
  net::LinkId victim;
  for (const net::Link& l : world.network().links()) {
    if (net::is_cleanable(l.medium)) {
      victim = l.id;
      break;
    }
  }
  world.network().link_mut(victim).end_a.condition.contamination = 0.9;
  world.network().refresh_link(victim);
  std::printf("injected: contamination on link %d (%s, %d cores/end) -> %s\n",
              victim.value(), net::to_string(world.network().link(victim).medium),
              world.network().link(victim).cores_per_end(),
              net::to_string(world.network().link(victim).state));

  // 4. Run two simulated days.
  world.run_for(sim::Duration::days(2));

  // 5. Print what the control plane did.
  std::printf("\nticket timeline:\n");
  for (const maintenance::Ticket& t : world.tickets().all()) {
    std::printf(
        "  #%d link=%d issue=%s opened=%s dispatched=%s resolved=%s by=%s attempts=%d\n",
        t.id, t.link.value(), telemetry::to_string(t.issue),
        sim::format_time(t.opened).c_str(), sim::format_time(t.dispatched).c_str(),
        t.state == maintenance::TicketState::kResolved ? sim::format_time(t.resolved).c_str()
                                                       : "-",
        t.resolved_by.empty() ? "-" : t.resolved_by.c_str(), t.actions_taken);
  }
  std::printf("\nlink %d final state: %s (contamination %.2f)\n", victim.value(),
              net::to_string(world.network().link(victim).state),
              world.network().link(victim).end_a.condition.contamination);
  std::printf("robot jobs: %zu, technician jobs: %zu, fleet availability: %.6f\n",
              world.controller().robot_jobs(), world.controller().technician_jobs(),
              world.availability().fleet_availability());
  return 0;
}
