// Proactive maintenance (§4): a hall-scale robot fleet uses low-utilization
// windows to reseat and clean hardware before it fails. This example runs the
// same fault environment twice — reactive-only vs proactive — and prints the
// failures avoided and the robot-hours the proactive policy consumed.
//
//   ./proactive_fleet [days] [seed]
#include <cstdio>
#include <cstdlib>

#include "scenario/world.h"
#include "topology/builders.h"

namespace {

using namespace smn;

struct RunResult {
  std::size_t genuine_tickets = 0;
  std::size_t gray_episodes = 0;
  std::size_t proactive_actions = 0;
  double robot_hours = 0.0;
  double availability = 0.0;
  double impaired_hours = 0.0;
};

RunResult run(bool proactive, int days, std::uint64_t seed) {
  const topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 12, .spines = 4, .servers_per_leaf = 8, .uplinks_per_spine = 1});
  scenario::WorldConfig cfg =
      scenario::WorldConfig::for_level(core::AutomationLevel::kL3_HighAutomation);
  cfg.seed = seed;
  cfg.network.aoc_max_m = 5.0;
  cfg.controller.proactive.enabled = proactive;
  cfg.controller.proactive.scan_interval = sim::Duration::hours(2);
  cfg.controller.proactive.switch_reseat_trigger = 2;
  // Make the §1 wear mechanisms bite within the run.
  cfg.faults.oxidation_rate_per_year = 0.6;
  cfg.contamination.mean_accumulation_per_day = 0.01;

  scenario::World world{bp, cfg};
  world.run_for(sim::Duration::days(days));

  RunResult r;
  for (const maintenance::Ticket& t : world.tickets().all()) {
    if (t.genuine && !t.proactive) ++r.genuine_tickets;
  }
  r.gray_episodes = world.injector().count(fault::FaultKind::kGrayEpisode);
  r.proactive_actions = world.controller().proactive_actions();
  r.robot_hours = world.fleet().busy_hours();
  r.availability = world.availability().fleet_availability();
  r.impaired_hours = world.availability().impaired_link_hours();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int days = argc > 1 ? std::atoi(argv[1]) : 90;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;

  std::printf("leaf-spine hall, %d simulated days, seed %llu\n\n", days,
              static_cast<unsigned long long>(seed));
  const RunResult reactive = run(false, days, seed);
  const RunResult proactive = run(true, days, seed);

  std::printf("%-26s %12s %12s\n", "", "reactive", "proactive");
  std::printf("%-26s %12zu %12zu\n", "failure tickets", reactive.genuine_tickets,
              proactive.genuine_tickets);
  std::printf("%-26s %12zu %12zu\n", "gray episodes", reactive.gray_episodes,
              proactive.gray_episodes);
  std::printf("%-26s %12.1f %12.1f\n", "impaired link-hours", reactive.impaired_hours,
              proactive.impaired_hours);
  std::printf("%-26s %12zu %12zu\n", "proactive actions", reactive.proactive_actions,
              proactive.proactive_actions);
  std::printf("%-26s %12.1f %12.1f\n", "robot busy-hours", reactive.robot_hours,
              proactive.robot_hours);
  std::printf("%-26s %12.6f %12.6f\n", "fleet availability", reactive.availability,
              proactive.availability);

  if (proactive.gray_episodes < reactive.gray_episodes) {
    std::printf("\nproactive maintenance avoided %zu gray episodes (%.0f%%)\n",
                reactive.gray_episodes - proactive.gray_episodes,
                100.0 * static_cast<double>(reactive.gray_episodes - proactive.gray_episodes) /
                    static_cast<double>(reactive.gray_episodes));
  }
  return 0;
}
