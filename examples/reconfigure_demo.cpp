// Robotic topology reconfiguration demo (§4): a leaf-spine fabric serves a
// training-job traffic pattern it was not wired for; the reconfigurer plans
// composite cable moves, an L4 cable-laying fleet executes them, and the
// fabric's delivered goodput rises — while the plant keeps running.
//
//   ./reconfigure_demo [seed]
#include <cstdio>
#include <cstdlib>

#include "core/reconfigure.h"
#include "net/traffic.h"
#include "scenario/world.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace smn;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21;

  const topology::Blueprint bp = topology::build_leaf_spine({.leaves = 8,
                                                             .spines = 4,
                                                             .servers_per_leaf = 8,
                                                             .uplinks_per_spine = 1,
                                                             .server_gbps = 100.0,
                                                             .uplink_gbps = 100.0});
  scenario::WorldConfig cfg =
      scenario::WorldConfig::for_level(core::AutomationLevel::kL4_FullAutomation);
  cfg.seed = seed;
  cfg.fleet.failure_per_job = 0.0;
  scenario::World world{bp, cfg};
  world.start();

  // The workload: an all-to-all training job pinned to the first three
  // leaves, plus light background traffic.
  sim::RngFactory rngs{seed};
  sim::RngStream rng = rngs.stream("demo");
  net::TrafficMatrix tm;
  const auto servers = world.network().servers();
  std::vector<net::DeviceId> job(servers.begin(), servers.begin() + 24);
  for (int i = 0; i < 400; ++i) {
    const net::DeviceId src = job[rng.index(job.size())];
    net::DeviceId dst = src;
    while (dst == src) dst = job[rng.index(job.size())];
    tm.flows.push_back(net::Flow{src, dst, 4.0});
  }
  const net::TrafficMatrix bg = net::TrafficMatrix::uniform(world.network(), 200, 0.5, rng);
  tm.flows.insert(tm.flows.end(), bg.flows.begin(), bg.flows.end());

  const net::LoadReport before = net::route_and_load(world.network(), tm);
  std::printf("static fabric:  %.0f of %.0f Gbps delivered (max util %.2f)\n",
              before.delivered_gbps, before.demand_gbps, before.max_link_utilization);

  core::TopologyReconfigurer::Config rcfg;
  rcfg.max_moves = 6;
  rcfg.min_relative_gain = 0.002;
  core::TopologyReconfigurer rec{world.network(), &world.fleet(), rcfg};
  const auto plan = rec.plan(tm);
  std::printf("\nplan: %zu composite moves\n", plan.moves.size());
  for (std::size_t i = 0; i < plan.moves.size(); ++i) {
    const auto& m = plan.moves[i];
    std::printf("  move %zu: %zu cable re-terminations, %.0f -> %.0f Gbps\n", i + 1,
                m.rewires.size(), m.delivered_before, m.delivered_after);
    for (const auto& r : m.rewires) {
      std::printf("    cable %d: %s--%s  ->  %s--%s\n", r.link.value(),
                  world.network().device(r.from_a).name.c_str(),
                  world.network().device(r.from_b).name.c_str(),
                  world.network().device(r.to_a).name.c_str(),
                  world.network().device(r.to_b).name.c_str());
    }
  }

  const sim::TimePoint t0 = world.now();
  bool finished = plan.moves.empty();
  rec.apply(plan, [&] { finished = true; });
  while (!finished) world.run_for(sim::Duration::minutes(10));

  const net::LoadReport after = net::route_and_load(world.network(), tm);
  std::printf("\nrewired fabric: %.0f of %.0f Gbps delivered (+%.1f%%), done in %s\n",
              after.delivered_gbps, after.demand_gbps,
              100.0 * (after.delivered_gbps - before.delivered_gbps) /
                  std::max(1.0, before.delivered_gbps),
              sim::format_duration(world.now() - t0).c_str());
  std::printf("robots did the re-cabling; no technician entered the hall.\n");
  return 0;
}
