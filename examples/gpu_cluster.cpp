// The paper's §1 motivation: in an AI cluster, a single failed rail link
// changes resource availability per GPU and can idle a large training job,
// yet a spare link per link is unaffordable. This example breaks one rail
// link under (a) a human-technician world and (b) a Level-3 robotic world,
// and prints how many GPU-hours the job loses in each.
//
//   ./gpu_cluster [seed]
#include <cstdio>
#include <cstdlib>

#include "net/routing.h"
#include "scenario/world.h"
#include "topology/builders.h"

namespace {

using namespace smn;

struct Outcome {
  double repair_hours = 0.0;
  double gpu_hours_lost = 0.0;
  std::string fixed_by;
};

Outcome run(core::AutomationLevel level, std::uint64_t seed) {
  const topology::GpuClusterParams params{
      .gpu_servers = 32, .rails = 8, .spines = 4};
  const topology::Blueprint bp = topology::build_gpu_cluster(params);

  scenario::WorldConfig cfg = scenario::WorldConfig::for_level(level);
  cfg.seed = seed;
  // Quiet background so the one directed failure is the whole story.
  cfg.faults.transceiver_afr = 0;
  cfg.faults.cable_afr = 0;
  cfg.faults.switch_afr = 0;
  cfg.faults.server_nic_afr = 0;
  cfg.faults.gray_rate_per_year = 0;
  cfg.contamination.mean_accumulation_per_day = 0;
  cfg.detection.false_positive_per_year = 0;
  scenario::World world{bp, cfg};
  world.start();

  // The training job runs across all GPU servers; its collective throughput
  // needs every rail of every server (rail-optimized all-reduce).
  const net::DeviceId gpu0 = world.network().servers()[0];
  const net::LinkId rail = world.network().links_at(gpu0)[3];

  world.run_for(sim::Duration::hours(1));
  world.injector().inject_transceiver_failure(rail, 0);
  const sim::TimePoint broke = world.now();

  // Integrate job-idle time until the rail is restored (cap: 7 days).
  Outcome out;
  const sim::Duration step = sim::Duration::minutes(5);
  while (world.network().link(rail).state != net::LinkState::kUp &&
         world.now() - broke < sim::Duration::days(7)) {
    world.run_for(step);
  }
  out.repair_hours = (world.now() - broke).to_hours();
  // All 32 servers x 8 GPUs idle while the collective is degraded.
  out.gpu_hours_lost = out.repair_hours * params.gpu_servers * 8;
  for (const maintenance::Ticket& t : world.tickets().all()) {
    if (t.link == rail && t.state == maintenance::TicketState::kResolved) {
      out.fixed_by = t.resolved_by;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  std::printf("GPU pod: 32 servers x 8 rails; one rail transceiver dies.\n\n");
  const Outcome human = run(core::AutomationLevel::kL0_Manual, seed);
  const Outcome robot = run(core::AutomationLevel::kL3_HighAutomation, seed);

  std::printf("%-22s %14s %16s %s\n", "world", "repair (h)", "GPU-hours lost", "fixed by");
  std::printf("%-22s %14.2f %16.0f %s\n", "L0 human technicians", human.repair_hours,
              human.gpu_hours_lost, human.fixed_by.c_str());
  std::printf("%-22s %14.2f %16.0f %s\n", "L3 robotic fleet", robot.repair_hours,
              robot.gpu_hours_lost, robot.fixed_by.c_str());
  if (robot.repair_hours > 0) {
    std::printf("\nspeedup: %.0fx less GPU idle time\n",
                human.repair_hours / robot.repair_hours);
  }
  return 0;
}
