// Walks the Figure-2 cleaning robot's state machine on one contaminated MPO
// link, printing every actuator step with its timing and the inspection
// verdicts — the software stand-in for the paper's hardware photographs.
//
//   ./cleaning_robot_demo [seed]
#include <cstdio>
#include <cstdlib>

#include "net/network.h"
#include "robotics/cleaner.h"
#include "robotics/manipulator.h"
#include "sim/event_queue.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace smn;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  sim::Simulator sim;
  net::Network::Config ncfg;
  ncfg.aoc_max_m = 5.0;
  ncfg.seed = seed;
  const topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 2, .uplinks_per_spine = 1});
  net::Network net{bp, ncfg, sim};

  // Find an 800G-class MPO uplink and soil one end.
  net::LinkId victim;
  for (const net::Link& l : net.links()) {
    if (l.medium == net::CableMedium::kMpoOptical) {
      victim = l.id;
      break;
    }
  }
  net::Link& link = net.link_mut(victim);
  link.end_a.condition.contamination = 0.75;
  net.refresh_link(victim);

  std::printf("target: link %d, %s, %s, %d cores/end, end-face %s\n",
              victim.value(), net::to_string(link.medium),
              link.end_a.model.describe().c_str(), link.cores_per_end(),
              link.end_a.model.angled_end_face ? "APC 8-degree" : "flat");
  std::printf("initial condition: contamination %.2f -> link %s\n\n",
              link.end_a.condition.contamination, net::to_string(link.state));

  sim::RngFactory rngs{seed};
  sim::RngStream rng = rngs.stream("demo");

  // Step 1: the manipulation robot (Figure 1) extracts the transceiver.
  robotics::ManipulatorModel arm;
  const auto grab = arm.unplug(rng, link.end_a.model, 4);
  std::printf("[manipulator] vision scan + approach + grasp (%d attempt%s) ... %s in %s\n",
              grab.grasp_attempts, grab.grasp_attempts == 1 ? "" : "s",
              grab.success ? "extracted" : "FAILED", sim::format_duration(grab.duration).c_str());
  if (!grab.success) {
    std::printf("grasp failed after retries -> requesting human support (§3.3.2)\n");
    return 0;
  }

  // Step 2: the cleaning unit (Figure 2) runs its detach/inspect/clean loop
  // with IEC-graded verification of the actual residual.
  robotics::CleaningModel cleaner;
  const auto run = cleaner.clean_sequence_graded(rng, link.cores_per_end(),
                                                 link.end_a.condition.contamination);
  double t = 0.0;
  std::printf("\n[cleaning unit] %d-core end-face:\n", link.cores_per_end());
  for (const robotics::CleaningStep step : run.trace) {
    const char* note = "";
    switch (step) {
      case robotics::CleaningStep::kInspect:
      case robotics::CleaningStep::kReinspect:
        note = " (free-space imaging, no end-face contact)";
        break;
      case robotics::CleaningStep::kWetClean: note = " (solvent pass)"; break;
      case robotics::CleaningStep::kDryClean: note = " (dry wipe)"; break;
      case robotics::CleaningStep::kRotate: note = " (actuator re-positions module)"; break;
      case robotics::CleaningStep::kEscalate: note = " -> requests human support"; break;
      default: break;
    }
    std::printf("  t+%6.1fs  %-11s%s\n", t, robotics::to_string(step), note);
    t += 1.0;  // display order only; real timing is in run.duration
  }
  std::printf("  cycles: %d, verified: %s, total machine time %s\n", run.cycles,
              run.verified ? "yes" : "NO", sim::format_duration(run.duration).c_str());
  std::printf("  final inspection report (IEC-style per-core grading):\n");
  for (std::size_t core = 0; core < run.last_scan.cores.size(); ++core) {
    const auto& c = run.last_scan.cores[core];
    std::printf("    core %zu: grade %s (%d core-zone, %d cladding defects)\n", core,
                robotics::to_string(c.grade), c.core_zone_defects, c.cladding_defects);
  }

  // Step 3: apply the effect to the hardware model and re-insert.
  link.end_a.condition.contamination *= (1.0 - run.total_effectiveness);
  link.end_a.condition.clean_count += 1;
  const auto put = arm.plug(rng, link.end_a.model, 4);
  net.refresh_link(victim);
  std::printf("\n[manipulator] re-insert + verify ... %s in %s\n",
              put.success ? "done" : "FAILED", sim::format_duration(put.duration).c_str());

  std::printf("\nfinal condition: contamination %.3f -> link %s\n",
              link.end_a.condition.contamination, net::to_string(net.link(victim).state));
  const double total_min =
      (grab.duration + run.duration + put.duration).to_minutes();
  std::printf("end-to-end: %.1f minutes (paper §3.3.2: \"a few minutes\")\n", total_min);
  return 0;
}
