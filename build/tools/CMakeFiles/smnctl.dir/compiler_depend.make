# Empty compiler generated dependencies file for smnctl.
# This may be replaced when dependencies are built.
