file(REMOVE_RECURSE
  "CMakeFiles/smnctl.dir/smn_sim.cpp.o"
  "CMakeFiles/smnctl.dir/smn_sim.cpp.o.d"
  "smnctl"
  "smnctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smnctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
