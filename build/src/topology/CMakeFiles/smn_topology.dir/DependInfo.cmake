
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/blueprint.cpp" "src/topology/CMakeFiles/smn_topology.dir/blueprint.cpp.o" "gcc" "src/topology/CMakeFiles/smn_topology.dir/blueprint.cpp.o.d"
  "/root/repo/src/topology/builders.cpp" "src/topology/CMakeFiles/smn_topology.dir/builders.cpp.o" "gcc" "src/topology/CMakeFiles/smn_topology.dir/builders.cpp.o.d"
  "/root/repo/src/topology/deployment.cpp" "src/topology/CMakeFiles/smn_topology.dir/deployment.cpp.o" "gcc" "src/topology/CMakeFiles/smn_topology.dir/deployment.cpp.o.d"
  "/root/repo/src/topology/metrics.cpp" "src/topology/CMakeFiles/smn_topology.dir/metrics.cpp.o" "gcc" "src/topology/CMakeFiles/smn_topology.dir/metrics.cpp.o.d"
  "/root/repo/src/topology/physical.cpp" "src/topology/CMakeFiles/smn_topology.dir/physical.cpp.o" "gcc" "src/topology/CMakeFiles/smn_topology.dir/physical.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/smn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
