file(REMOVE_RECURSE
  "CMakeFiles/smn_topology.dir/blueprint.cpp.o"
  "CMakeFiles/smn_topology.dir/blueprint.cpp.o.d"
  "CMakeFiles/smn_topology.dir/builders.cpp.o"
  "CMakeFiles/smn_topology.dir/builders.cpp.o.d"
  "CMakeFiles/smn_topology.dir/deployment.cpp.o"
  "CMakeFiles/smn_topology.dir/deployment.cpp.o.d"
  "CMakeFiles/smn_topology.dir/metrics.cpp.o"
  "CMakeFiles/smn_topology.dir/metrics.cpp.o.d"
  "CMakeFiles/smn_topology.dir/physical.cpp.o"
  "CMakeFiles/smn_topology.dir/physical.cpp.o.d"
  "libsmn_topology.a"
  "libsmn_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smn_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
