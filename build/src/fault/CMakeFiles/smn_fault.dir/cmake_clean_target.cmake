file(REMOVE_RECURSE
  "libsmn_fault.a"
)
