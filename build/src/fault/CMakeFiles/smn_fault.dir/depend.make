# Empty dependencies file for smn_fault.
# This may be replaced when dependencies are built.
