
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/cascade.cpp" "src/fault/CMakeFiles/smn_fault.dir/cascade.cpp.o" "gcc" "src/fault/CMakeFiles/smn_fault.dir/cascade.cpp.o.d"
  "/root/repo/src/fault/contamination.cpp" "src/fault/CMakeFiles/smn_fault.dir/contamination.cpp.o" "gcc" "src/fault/CMakeFiles/smn_fault.dir/contamination.cpp.o.d"
  "/root/repo/src/fault/environment.cpp" "src/fault/CMakeFiles/smn_fault.dir/environment.cpp.o" "gcc" "src/fault/CMakeFiles/smn_fault.dir/environment.cpp.o.d"
  "/root/repo/src/fault/injector.cpp" "src/fault/CMakeFiles/smn_fault.dir/injector.cpp.o" "gcc" "src/fault/CMakeFiles/smn_fault.dir/injector.cpp.o.d"
  "/root/repo/src/fault/trace.cpp" "src/fault/CMakeFiles/smn_fault.dir/trace.cpp.o" "gcc" "src/fault/CMakeFiles/smn_fault.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/smn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/smn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
