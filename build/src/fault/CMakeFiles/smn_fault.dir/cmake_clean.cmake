file(REMOVE_RECURSE
  "CMakeFiles/smn_fault.dir/cascade.cpp.o"
  "CMakeFiles/smn_fault.dir/cascade.cpp.o.d"
  "CMakeFiles/smn_fault.dir/contamination.cpp.o"
  "CMakeFiles/smn_fault.dir/contamination.cpp.o.d"
  "CMakeFiles/smn_fault.dir/environment.cpp.o"
  "CMakeFiles/smn_fault.dir/environment.cpp.o.d"
  "CMakeFiles/smn_fault.dir/injector.cpp.o"
  "CMakeFiles/smn_fault.dir/injector.cpp.o.d"
  "CMakeFiles/smn_fault.dir/trace.cpp.o"
  "CMakeFiles/smn_fault.dir/trace.cpp.o.d"
  "libsmn_fault.a"
  "libsmn_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smn_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
