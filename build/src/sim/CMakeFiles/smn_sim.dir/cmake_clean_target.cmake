file(REMOVE_RECURSE
  "libsmn_sim.a"
)
