file(REMOVE_RECURSE
  "CMakeFiles/smn_sim.dir/event_queue.cpp.o"
  "CMakeFiles/smn_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/smn_sim.dir/rng.cpp.o"
  "CMakeFiles/smn_sim.dir/rng.cpp.o.d"
  "CMakeFiles/smn_sim.dir/time.cpp.o"
  "CMakeFiles/smn_sim.dir/time.cpp.o.d"
  "libsmn_sim.a"
  "libsmn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
