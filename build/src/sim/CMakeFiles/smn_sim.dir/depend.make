# Empty dependencies file for smn_sim.
# This may be replaced when dependencies are built.
