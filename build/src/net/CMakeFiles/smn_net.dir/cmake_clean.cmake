file(REMOVE_RECURSE
  "CMakeFiles/smn_net.dir/link.cpp.o"
  "CMakeFiles/smn_net.dir/link.cpp.o.d"
  "CMakeFiles/smn_net.dir/network.cpp.o"
  "CMakeFiles/smn_net.dir/network.cpp.o.d"
  "CMakeFiles/smn_net.dir/routing.cpp.o"
  "CMakeFiles/smn_net.dir/routing.cpp.o.d"
  "CMakeFiles/smn_net.dir/traffic.cpp.o"
  "CMakeFiles/smn_net.dir/traffic.cpp.o.d"
  "CMakeFiles/smn_net.dir/transceiver.cpp.o"
  "CMakeFiles/smn_net.dir/transceiver.cpp.o.d"
  "libsmn_net.a"
  "libsmn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
