file(REMOVE_RECURSE
  "libsmn_net.a"
)
