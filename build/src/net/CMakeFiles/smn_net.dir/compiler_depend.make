# Empty compiler generated dependencies file for smn_net.
# This may be replaced when dependencies are built.
