file(REMOVE_RECURSE
  "libsmn_maintenance.a"
)
