# Empty dependencies file for smn_maintenance.
# This may be replaced when dependencies are built.
