file(REMOVE_RECURSE
  "CMakeFiles/smn_maintenance.dir/actions.cpp.o"
  "CMakeFiles/smn_maintenance.dir/actions.cpp.o.d"
  "CMakeFiles/smn_maintenance.dir/technician.cpp.o"
  "CMakeFiles/smn_maintenance.dir/technician.cpp.o.d"
  "CMakeFiles/smn_maintenance.dir/ticket.cpp.o"
  "CMakeFiles/smn_maintenance.dir/ticket.cpp.o.d"
  "libsmn_maintenance.a"
  "libsmn_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smn_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
