file(REMOVE_RECURSE
  "libsmn_workload.a"
)
