# Empty dependencies file for smn_workload.
# This may be replaced when dependencies are built.
