file(REMOVE_RECURSE
  "CMakeFiles/smn_workload.dir/storage_service.cpp.o"
  "CMakeFiles/smn_workload.dir/storage_service.cpp.o.d"
  "CMakeFiles/smn_workload.dir/training_job.cpp.o"
  "CMakeFiles/smn_workload.dir/training_job.cpp.o.d"
  "libsmn_workload.a"
  "libsmn_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smn_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
