
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/storage_service.cpp" "src/workload/CMakeFiles/smn_workload.dir/storage_service.cpp.o" "gcc" "src/workload/CMakeFiles/smn_workload.dir/storage_service.cpp.o.d"
  "/root/repo/src/workload/training_job.cpp" "src/workload/CMakeFiles/smn_workload.dir/training_job.cpp.o" "gcc" "src/workload/CMakeFiles/smn_workload.dir/training_job.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/smn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/smn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
