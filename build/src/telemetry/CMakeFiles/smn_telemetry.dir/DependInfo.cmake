
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/localization.cpp" "src/telemetry/CMakeFiles/smn_telemetry.dir/localization.cpp.o" "gcc" "src/telemetry/CMakeFiles/smn_telemetry.dir/localization.cpp.o.d"
  "/root/repo/src/telemetry/monitor.cpp" "src/telemetry/CMakeFiles/smn_telemetry.dir/monitor.cpp.o" "gcc" "src/telemetry/CMakeFiles/smn_telemetry.dir/monitor.cpp.o.d"
  "/root/repo/src/telemetry/predictor.cpp" "src/telemetry/CMakeFiles/smn_telemetry.dir/predictor.cpp.o" "gcc" "src/telemetry/CMakeFiles/smn_telemetry.dir/predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/smn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/smn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
