file(REMOVE_RECURSE
  "CMakeFiles/smn_telemetry.dir/localization.cpp.o"
  "CMakeFiles/smn_telemetry.dir/localization.cpp.o.d"
  "CMakeFiles/smn_telemetry.dir/monitor.cpp.o"
  "CMakeFiles/smn_telemetry.dir/monitor.cpp.o.d"
  "CMakeFiles/smn_telemetry.dir/predictor.cpp.o"
  "CMakeFiles/smn_telemetry.dir/predictor.cpp.o.d"
  "libsmn_telemetry.a"
  "libsmn_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smn_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
