file(REMOVE_RECURSE
  "libsmn_telemetry.a"
)
