# Empty dependencies file for smn_robotics.
# This may be replaced when dependencies are built.
