file(REMOVE_RECURSE
  "libsmn_robotics.a"
)
