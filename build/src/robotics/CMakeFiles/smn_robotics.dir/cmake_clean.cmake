file(REMOVE_RECURSE
  "CMakeFiles/smn_robotics.dir/cleaner.cpp.o"
  "CMakeFiles/smn_robotics.dir/cleaner.cpp.o.d"
  "CMakeFiles/smn_robotics.dir/fleet.cpp.o"
  "CMakeFiles/smn_robotics.dir/fleet.cpp.o.d"
  "CMakeFiles/smn_robotics.dir/grading.cpp.o"
  "CMakeFiles/smn_robotics.dir/grading.cpp.o.d"
  "CMakeFiles/smn_robotics.dir/manipulator.cpp.o"
  "CMakeFiles/smn_robotics.dir/manipulator.cpp.o.d"
  "libsmn_robotics.a"
  "libsmn_robotics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smn_robotics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
