file(REMOVE_RECURSE
  "CMakeFiles/smn_core.dir/automation.cpp.o"
  "CMakeFiles/smn_core.dir/automation.cpp.o.d"
  "CMakeFiles/smn_core.dir/controller.cpp.o"
  "CMakeFiles/smn_core.dir/controller.cpp.o.d"
  "CMakeFiles/smn_core.dir/energy.cpp.o"
  "CMakeFiles/smn_core.dir/energy.cpp.o.d"
  "CMakeFiles/smn_core.dir/escalation.cpp.o"
  "CMakeFiles/smn_core.dir/escalation.cpp.o.d"
  "CMakeFiles/smn_core.dir/migration.cpp.o"
  "CMakeFiles/smn_core.dir/migration.cpp.o.d"
  "CMakeFiles/smn_core.dir/reconfigure.cpp.o"
  "CMakeFiles/smn_core.dir/reconfigure.cpp.o.d"
  "CMakeFiles/smn_core.dir/traffic.cpp.o"
  "CMakeFiles/smn_core.dir/traffic.cpp.o.d"
  "libsmn_core.a"
  "libsmn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
