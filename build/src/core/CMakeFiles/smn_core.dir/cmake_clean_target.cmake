file(REMOVE_RECURSE
  "libsmn_core.a"
)
