
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/automation.cpp" "src/core/CMakeFiles/smn_core.dir/automation.cpp.o" "gcc" "src/core/CMakeFiles/smn_core.dir/automation.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/smn_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/smn_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/energy.cpp" "src/core/CMakeFiles/smn_core.dir/energy.cpp.o" "gcc" "src/core/CMakeFiles/smn_core.dir/energy.cpp.o.d"
  "/root/repo/src/core/escalation.cpp" "src/core/CMakeFiles/smn_core.dir/escalation.cpp.o" "gcc" "src/core/CMakeFiles/smn_core.dir/escalation.cpp.o.d"
  "/root/repo/src/core/migration.cpp" "src/core/CMakeFiles/smn_core.dir/migration.cpp.o" "gcc" "src/core/CMakeFiles/smn_core.dir/migration.cpp.o.d"
  "/root/repo/src/core/reconfigure.cpp" "src/core/CMakeFiles/smn_core.dir/reconfigure.cpp.o" "gcc" "src/core/CMakeFiles/smn_core.dir/reconfigure.cpp.o.d"
  "/root/repo/src/core/traffic.cpp" "src/core/CMakeFiles/smn_core.dir/traffic.cpp.o" "gcc" "src/core/CMakeFiles/smn_core.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/smn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/smn_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/smn_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/maintenance/CMakeFiles/smn_maintenance.dir/DependInfo.cmake"
  "/root/repo/build/src/robotics/CMakeFiles/smn_robotics.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/smn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
