file(REMOVE_RECURSE
  "libsmn_scenario.a"
)
