# Empty compiler generated dependencies file for smn_scenario.
# This may be replaced when dependencies are built.
