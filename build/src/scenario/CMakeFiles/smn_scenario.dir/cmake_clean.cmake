file(REMOVE_RECURSE
  "CMakeFiles/smn_scenario.dir/world.cpp.o"
  "CMakeFiles/smn_scenario.dir/world.cpp.o.d"
  "libsmn_scenario.a"
  "libsmn_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smn_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
