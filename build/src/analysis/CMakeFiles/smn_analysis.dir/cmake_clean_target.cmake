file(REMOVE_RECURSE
  "libsmn_analysis.a"
)
