
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/availability.cpp" "src/analysis/CMakeFiles/smn_analysis.dir/availability.cpp.o" "gcc" "src/analysis/CMakeFiles/smn_analysis.dir/availability.cpp.o.d"
  "/root/repo/src/analysis/cost.cpp" "src/analysis/CMakeFiles/smn_analysis.dir/cost.cpp.o" "gcc" "src/analysis/CMakeFiles/smn_analysis.dir/cost.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/smn_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/smn_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/spares.cpp" "src/analysis/CMakeFiles/smn_analysis.dir/spares.cpp.o" "gcc" "src/analysis/CMakeFiles/smn_analysis.dir/spares.cpp.o.d"
  "/root/repo/src/analysis/timeseries.cpp" "src/analysis/CMakeFiles/smn_analysis.dir/timeseries.cpp.o" "gcc" "src/analysis/CMakeFiles/smn_analysis.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/smn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/smn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
