# Empty dependencies file for smn_analysis.
# This may be replaced when dependencies are built.
