file(REMOVE_RECURSE
  "CMakeFiles/smn_analysis.dir/availability.cpp.o"
  "CMakeFiles/smn_analysis.dir/availability.cpp.o.d"
  "CMakeFiles/smn_analysis.dir/cost.cpp.o"
  "CMakeFiles/smn_analysis.dir/cost.cpp.o.d"
  "CMakeFiles/smn_analysis.dir/report.cpp.o"
  "CMakeFiles/smn_analysis.dir/report.cpp.o.d"
  "CMakeFiles/smn_analysis.dir/spares.cpp.o"
  "CMakeFiles/smn_analysis.dir/spares.cpp.o.d"
  "CMakeFiles/smn_analysis.dir/timeseries.cpp.o"
  "CMakeFiles/smn_analysis.dir/timeseries.cpp.o.d"
  "libsmn_analysis.a"
  "libsmn_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smn_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
