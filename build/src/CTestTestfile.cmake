# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("topology")
subdirs("net")
subdirs("fault")
subdirs("telemetry")
subdirs("maintenance")
subdirs("robotics")
subdirs("core")
subdirs("analysis")
subdirs("scenario")
subdirs("workload")
