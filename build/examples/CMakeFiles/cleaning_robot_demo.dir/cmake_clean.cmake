file(REMOVE_RECURSE
  "CMakeFiles/cleaning_robot_demo.dir/cleaning_robot_demo.cpp.o"
  "CMakeFiles/cleaning_robot_demo.dir/cleaning_robot_demo.cpp.o.d"
  "cleaning_robot_demo"
  "cleaning_robot_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaning_robot_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
