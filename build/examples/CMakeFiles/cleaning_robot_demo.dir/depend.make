# Empty dependencies file for cleaning_robot_demo.
# This may be replaced when dependencies are built.
