# Empty dependencies file for proactive_fleet.
# This may be replaced when dependencies are built.
