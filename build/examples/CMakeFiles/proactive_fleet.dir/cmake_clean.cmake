file(REMOVE_RECURSE
  "CMakeFiles/proactive_fleet.dir/proactive_fleet.cpp.o"
  "CMakeFiles/proactive_fleet.dir/proactive_fleet.cpp.o.d"
  "proactive_fleet"
  "proactive_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proactive_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
