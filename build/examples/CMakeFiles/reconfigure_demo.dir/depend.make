# Empty dependencies file for reconfigure_demo.
# This may be replaced when dependencies are built.
