file(REMOVE_RECURSE
  "CMakeFiles/reconfigure_demo.dir/reconfigure_demo.cpp.o"
  "CMakeFiles/reconfigure_demo.dir/reconfigure_demo.cpp.o.d"
  "reconfigure_demo"
  "reconfigure_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfigure_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
