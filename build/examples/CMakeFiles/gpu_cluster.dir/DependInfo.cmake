
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/gpu_cluster.cpp" "examples/CMakeFiles/gpu_cluster.dir/gpu_cluster.cpp.o" "gcc" "examples/CMakeFiles/gpu_cluster.dir/gpu_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/smn_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/smn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/smn_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/robotics/CMakeFiles/smn_robotics.dir/DependInfo.cmake"
  "/root/repo/build/src/maintenance/CMakeFiles/smn_maintenance.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/smn_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/smn_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/smn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/smn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
