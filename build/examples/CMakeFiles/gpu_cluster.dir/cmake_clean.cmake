file(REMOVE_RECURSE
  "CMakeFiles/gpu_cluster.dir/gpu_cluster.cpp.o"
  "CMakeFiles/gpu_cluster.dir/gpu_cluster.cpp.o.d"
  "gpu_cluster"
  "gpu_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
