# Empty dependencies file for smn_tests.
# This may be replaced when dependencies are built.
