
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/smn_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/chaos_test.cpp" "tests/CMakeFiles/smn_tests.dir/chaos_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/chaos_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/smn_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/deployment_test.cpp" "tests/CMakeFiles/smn_tests.dir/deployment_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/deployment_test.cpp.o.d"
  "/root/repo/tests/energy_test.cpp" "tests/CMakeFiles/smn_tests.dir/energy_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/energy_test.cpp.o.d"
  "/root/repo/tests/fault_test.cpp" "tests/CMakeFiles/smn_tests.dir/fault_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/fault_test.cpp.o.d"
  "/root/repo/tests/grading_test.cpp" "tests/CMakeFiles/smn_tests.dir/grading_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/grading_test.cpp.o.d"
  "/root/repo/tests/linecard_test.cpp" "tests/CMakeFiles/smn_tests.dir/linecard_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/linecard_test.cpp.o.d"
  "/root/repo/tests/localization_test.cpp" "tests/CMakeFiles/smn_tests.dir/localization_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/localization_test.cpp.o.d"
  "/root/repo/tests/maintenance_test.cpp" "tests/CMakeFiles/smn_tests.dir/maintenance_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/maintenance_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/smn_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/smn_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/reconfigure_test.cpp" "tests/CMakeFiles/smn_tests.dir/reconfigure_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/reconfigure_test.cpp.o.d"
  "/root/repo/tests/robotics_test.cpp" "tests/CMakeFiles/smn_tests.dir/robotics_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/robotics_test.cpp.o.d"
  "/root/repo/tests/safety_test.cpp" "tests/CMakeFiles/smn_tests.dir/safety_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/safety_test.cpp.o.d"
  "/root/repo/tests/scenario_test.cpp" "tests/CMakeFiles/smn_tests.dir/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/scenario_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/smn_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/telemetry_test.cpp" "tests/CMakeFiles/smn_tests.dir/telemetry_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/telemetry_test.cpp.o.d"
  "/root/repo/tests/timeseries_test.cpp" "tests/CMakeFiles/smn_tests.dir/timeseries_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/timeseries_test.cpp.o.d"
  "/root/repo/tests/topology_test.cpp" "tests/CMakeFiles/smn_tests.dir/topology_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/topology_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/smn_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/traffic_test.cpp" "tests/CMakeFiles/smn_tests.dir/traffic_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/traffic_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/smn_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/smn_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/smn_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/smn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/robotics/CMakeFiles/smn_robotics.dir/DependInfo.cmake"
  "/root/repo/build/src/maintenance/CMakeFiles/smn_maintenance.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/smn_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/smn_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/smn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/smn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/smn_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
