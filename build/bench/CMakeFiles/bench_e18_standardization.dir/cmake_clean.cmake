file(REMOVE_RECURSE
  "CMakeFiles/bench_e18_standardization.dir/bench_e18_standardization.cpp.o"
  "CMakeFiles/bench_e18_standardization.dir/bench_e18_standardization.cpp.o.d"
  "bench_e18_standardization"
  "bench_e18_standardization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e18_standardization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
