file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_proactive.dir/bench_e4_proactive.cpp.o"
  "CMakeFiles/bench_e4_proactive.dir/bench_e4_proactive.cpp.o.d"
  "bench_e4_proactive"
  "bench_e4_proactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_proactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
