file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_prediction.dir/bench_e8_prediction.cpp.o"
  "CMakeFiles/bench_e8_prediction.dir/bench_e8_prediction.cpp.o.d"
  "bench_e8_prediction"
  "bench_e8_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
