# Empty compiler generated dependencies file for bench_e3_cascades.
# This may be replaced when dependencies are built.
