file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_cascades.dir/bench_e3_cascades.cpp.o"
  "CMakeFiles/bench_e3_cascades.dir/bench_e3_cascades.cpp.o.d"
  "bench_e3_cascades"
  "bench_e3_cascades.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_cascades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
