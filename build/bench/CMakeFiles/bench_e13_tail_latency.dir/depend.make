# Empty dependencies file for bench_e13_tail_latency.
# This may be replaced when dependencies are built.
