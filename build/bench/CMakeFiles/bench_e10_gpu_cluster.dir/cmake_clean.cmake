file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_gpu_cluster.dir/bench_e10_gpu_cluster.cpp.o"
  "CMakeFiles/bench_e10_gpu_cluster.dir/bench_e10_gpu_cluster.cpp.o.d"
  "bench_e10_gpu_cluster"
  "bench_e10_gpu_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_gpu_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
