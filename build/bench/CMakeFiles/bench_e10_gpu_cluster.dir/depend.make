# Empty dependencies file for bench_e10_gpu_cluster.
# This may be replaced when dependencies are built.
