# Empty dependencies file for bench_e2_availability.
# This may be replaced when dependencies are built.
