file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_availability.dir/bench_e2_availability.cpp.o"
  "CMakeFiles/bench_e2_availability.dir/bench_e2_availability.cpp.o.d"
  "bench_e2_availability"
  "bench_e2_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
