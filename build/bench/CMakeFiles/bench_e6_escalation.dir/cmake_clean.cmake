file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_escalation.dir/bench_e6_escalation.cpp.o"
  "CMakeFiles/bench_e6_escalation.dir/bench_e6_escalation.cpp.o.d"
  "bench_e6_escalation"
  "bench_e6_escalation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_escalation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
