file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_topologies.dir/bench_e7_topologies.cpp.o"
  "CMakeFiles/bench_e7_topologies.dir/bench_e7_topologies.cpp.o.d"
  "bench_e7_topologies"
  "bench_e7_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
