# Empty dependencies file for bench_e7_topologies.
# This may be replaced when dependencies are built.
