# Empty dependencies file for bench_e11_supervision.
# This may be replaced when dependencies are built.
