# Empty compiler generated dependencies file for bench_e16_localization.
# This may be replaced when dependencies are built.
