file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_localization.dir/bench_e16_localization.cpp.o"
  "CMakeFiles/bench_e16_localization.dir/bench_e16_localization.cpp.o.d"
  "bench_e16_localization"
  "bench_e16_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
