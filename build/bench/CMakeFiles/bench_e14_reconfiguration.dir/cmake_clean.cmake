file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_reconfiguration.dir/bench_e14_reconfiguration.cpp.o"
  "CMakeFiles/bench_e14_reconfiguration.dir/bench_e14_reconfiguration.cpp.o.d"
  "bench_e14_reconfiguration"
  "bench_e14_reconfiguration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_reconfiguration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
