# Empty dependencies file for bench_e1_service_window.
# This may be replaced when dependencies are built.
