file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_fleet.dir/bench_e9_fleet.cpp.o"
  "CMakeFiles/bench_e9_fleet.dir/bench_e9_fleet.cpp.o.d"
  "bench_e9_fleet"
  "bench_e9_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
