# Empty dependencies file for bench_e9_fleet.
# This may be replaced when dependencies are built.
