file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_energy.dir/bench_e17_energy.cpp.o"
  "CMakeFiles/bench_e17_energy.dir/bench_e17_energy.cpp.o.d"
  "bench_e17_energy"
  "bench_e17_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
