# Empty dependencies file for bench_e17_energy.
# This may be replaced when dependencies are built.
