# Empty dependencies file for bench_e5_provisioning.
# This may be replaced when dependencies are built.
