# Empty dependencies file for bench_e15_deployment.
# This may be replaced when dependencies are built.
