file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_deployment.dir/bench_e15_deployment.cpp.o"
  "CMakeFiles/bench_e15_deployment.dir/bench_e15_deployment.cpp.o.d"
  "bench_e15_deployment"
  "bench_e15_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
